// The 1-interval connected dynamic graph model (Kuhn-Lynch-Oshman style,
// Section II of the paper): a fixed vertex set V with |V| = n, and for each
// round r an adversary-chosen edge set E_r such that G_r = (V, E_r) is
// connected. The adversary knows the algorithm and all states up to round
// r-1; the strongest adversaries here additionally dry-run the algorithm's
// compute phase (the paper's "the adversary knows which robot will move
// through which port in the next round", proof of Theorem 2).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "robots/configuration.h"
#include "util/types.h"

namespace dyndisp {

class ThreadPool;  // util/parallel.h

/// Planned exit ports for all robots on a candidate graph: entry id-1 holds
/// the port robot id would take (kInvalidPort = stay put / dead).
using MovePlan = std::vector<Port>;

/// Dry-runs the algorithm's compute phase on a candidate graph without
/// committing state. Installed by the simulation engine on adversaries that
/// request it.
using PlanProbe = std::function<MovePlan(const Graph&)>;

/// Produces G_r each round. Implementations must keep |V| fixed and every
/// emitted graph connected; dynamic::validate_graph enforces this in tests
/// and (optionally) inside the engine.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Human-readable adversary name for tables and traces.
  virtual std::string name() const = 0;

  /// Number of nodes of every emitted graph.
  virtual std::size_t node_count() const = 0;

  /// Emits G_r given the configuration at the start of round r.
  virtual Graph next_graph(Round r, const Configuration& conf) = 0;

  /// next_graph into caller-owned storage: must leave `out` exactly equal
  /// to what next_graph(r, conf) would have returned (same RNG stream
  /// advancement included). The engine double-buffers graphs and hands the
  /// round-before-last's Graph back in, so regenerating adversaries can
  /// refill its adjacency rows in place instead of allocating n fresh rows
  /// per round. The default simply assigns the fresh value -- copy-assign
  /// into a warm vector-of-vectors already recycles row capacity.
  virtual void next_graph_into(Round r, const Configuration& conf,
                               Graph& out) {
    out = next_graph(r, conf);
  }

  /// Installs the engine's compute pool for parallel graph construction
  /// (null = build serially). Adversaries that use the pool MUST emit
  /// byte-identical graphs at any thread count -- counter-based RNG
  /// streams, never lane-ordered draws; the adversary conformance suite
  /// pins exactly that for every registered adversary. The default ignores
  /// the pool (sequential builders are trivially thread-count-invariant).
  virtual void set_thread_pool(ThreadPool* pool) { (void)pool; }

  /// Reuse hint, queried by the engine BEFORE next_graph(r, conf): true
  /// promises that next_graph(r, conf) would return a graph operator==-equal
  /// to the last graph this adversary returned, letting the engine skip the
  /// call (and downstream rebuilds) entirely. Implementations must keep the
  /// promise even when the engine skipped some next_graph calls in between
  /// (i.e. the hint is relative to the last graph actually handed out). The
  /// conservative default -- never claim reuse -- is always safe: the engine
  /// falls back to fingerprint comparison of the emitted graph, so every
  /// adversary benefits from cross-round reuse, just one graph-build later.
  virtual bool same_as_last(Round r, const Configuration& conf) const {
    (void)r;
    (void)conf;
    return false;
  }

  /// True when this adversary dry-runs the algorithm (trap adversaries).
  virtual bool wants_plan_probe() const { return false; }

  /// Installs the dry-run callback. Called by the engine every round before
  /// next_graph when wants_plan_probe() is true.
  virtual void set_plan_probe(PlanProbe probe) { probe_ = std::move(probe); }

 protected:
  PlanProbe probe_;
};

/// Applies a move plan to a configuration on graph `g`: every alive robot
/// with a non-zero planned port moves across that port. Used by trap
/// adversaries to evaluate what a candidate graph would lead to.
Configuration apply_plan(const Graph& g, Configuration conf,
                         const MovePlan& plan);

/// The dynamic graph as experienced by one execution: caches the per-round
/// graphs an adversary emitted so traces, validators, and post-hoc metrics
/// (dynamic diameter, dynamic max degree) can replay them.
class DynamicGraphLog {
 public:
  void record(const Graph& g) { history_.push_back(g); }

  std::size_t rounds() const { return history_.size(); }
  const Graph& at(Round r) const { return history_[r]; }
  const std::vector<Graph>& history() const { return history_; }

  /// Dynamic diameter \hat{D}: max diameter over recorded rounds.
  std::size_t dynamic_diameter() const;

  /// Dynamic maximum degree \hat{Delta}: max degree over recorded rounds.
  std::size_t dynamic_max_degree() const;

 private:
  std::vector<Graph> history_;
};

}  // namespace dyndisp
