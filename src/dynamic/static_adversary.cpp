#include "dynamic/static_adversary.h"

#include <utility>

namespace dyndisp {

StaticAdversary::StaticAdversary(Graph g, bool reshuffle_ports,
                                 std::uint64_t seed)
    : graph_(std::move(g)), reshuffle_ports_(reshuffle_ports), rng_(seed) {}

std::string StaticAdversary::name() const {
  return reshuffle_ports_ ? "static+port-shuffle" : "static";
}

Graph StaticAdversary::next_graph(Round, const Configuration&) {
  if (reshuffle_ports_) graph_.shuffle_ports(rng_);
  has_emitted_ = true;
  return graph_;
}

}  // namespace dyndisp
