#include "dynamic/static_adversary.h"

#include <utility>

#include "graph/builders.h"

namespace dyndisp {

StaticAdversary::StaticAdversary(Graph g, bool reshuffle_ports,
                                 std::uint64_t seed)
    : graph_(std::move(g)),
      reshuffle_ports_(reshuffle_ports),
      seed_(seed),
      rng_(seed) {}

std::string StaticAdversary::name() const {
  return reshuffle_ports_ ? "static+port-shuffle" : "static";
}

void StaticAdversary::refresh() {
  if (!reshuffle_ports_) return;
  if (graph_.node_count() >= builders::kCounterBuilderMinNodes)
    graph_.shuffle_ports_counter(seed_, emissions_, pool_);
  else
    graph_.shuffle_ports(rng_);
  ++emissions_;
}

Graph StaticAdversary::next_graph(Round, const Configuration&) {
  refresh();
  has_emitted_ = true;
  return graph_;
}

void StaticAdversary::next_graph_into(Round, const Configuration&,
                                      Graph& out) {
  refresh();
  has_emitted_ = true;
  out = graph_;
}

}  // namespace dyndisp
