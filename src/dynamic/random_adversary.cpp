#include "dynamic/random_adversary.h"

#include "graph/builders.h"

namespace dyndisp {

RandomAdversary::RandomAdversary(std::size_t n, std::size_t extra_edges,
                                 std::uint64_t seed)
    : n_(n), extra_edges_(extra_edges), seed_(seed), rng_(seed) {}

Graph RandomAdversary::next_graph(Round r, const Configuration& conf) {
  Graph g;
  next_graph_into(r, conf, g);
  return g;
}

void RandomAdversary::next_graph_into(Round, const Configuration&,
                                      Graph& out) {
  if (n_ >= builders::kCounterBuilderMinNodes) {
    builders::random_connected_counter(n_, extra_edges_, seed_, emissions_++,
                                       pool_, scratch_, out);
    return;
  }
  out = builders::random_connected(n_, extra_edges_, rng_);
  out.shuffle_ports(rng_);
}

}  // namespace dyndisp
