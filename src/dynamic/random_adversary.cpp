#include "dynamic/random_adversary.h"

#include "graph/builders.h"

namespace dyndisp {

RandomAdversary::RandomAdversary(std::size_t n, std::size_t extra_edges,
                                 std::uint64_t seed)
    : n_(n), extra_edges_(extra_edges), rng_(seed) {}

Graph RandomAdversary::next_graph(Round, const Configuration&) {
  Graph g = builders::random_connected(n_, extra_edges_, rng_);
  g.shuffle_ports(rng_);
  return g;
}

}  // namespace dyndisp
