// Oblivious random adversary: emits a fresh random connected graph (random
// spanning tree plus `extra_edges` chords) with freshly shuffled port labels
// every round. This is the workhorse "benign but fully dynamic" input for
// the Theorem 4 scaling experiments.
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "graph/builders.h"
#include "util/rng.h"

namespace dyndisp {

class RandomAdversary final : public Adversary {
 public:
  RandomAdversary(std::size_t n, std::size_t extra_edges, std::uint64_t seed);

  std::string name() const override { return "random-connected"; }
  std::size_t node_count() const override { return n_; }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Large n (>= builders::kCounterBuilderMinNodes) regenerates through the
  /// counter-based flat builder: per-emission (seed, emission#) streams,
  /// recycled scratch and rows, and optional parallel_for fan-out -- same
  /// distribution as the legacy path, byte-identical at any thread count.
  /// Small n keeps the legacy sequential Rng draws the golden digests pin.
  void next_graph_into(Round r, const Configuration& conf,
                       Graph& out) override;
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }

 private:
  std::size_t n_;
  std::size_t extra_edges_;
  std::uint64_t seed_;
  Rng rng_;                  ///< Legacy sequential stream (small n only).
  std::uint64_t emissions_ = 0;  ///< Counter-path draw index (large n only).
  ThreadPool* pool_ = nullptr;
  builders::CounterBuildScratch scratch_;
};

}  // namespace dyndisp
