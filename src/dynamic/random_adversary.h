// Oblivious random adversary: emits a fresh random connected graph (random
// spanning tree plus `extra_edges` chords) with freshly shuffled port labels
// every round. This is the workhorse "benign but fully dynamic" input for
// the Theorem 4 scaling experiments.
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class RandomAdversary final : public Adversary {
 public:
  RandomAdversary(std::size_t n, std::size_t extra_edges, std::uint64_t seed);

  std::string name() const override { return "random-connected"; }
  std::size_t node_count() const override { return n_; }
  Graph next_graph(Round r, const Configuration& conf) override;

 private:
  std::size_t n_;
  std::size_t extra_edges_;
  Rng rng_;
};

}  // namespace dyndisp
