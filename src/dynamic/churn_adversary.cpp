#include "dynamic/churn_adversary.h"

#include <cassert>
#include <utility>

#include "graph/algorithms.h"

namespace dyndisp {

ChurnAdversary::ChurnAdversary(Graph initial, std::size_t churn,
                               std::uint64_t seed, bool reshuffle_ports)
    : graph_(std::move(initial)),
      churn_(churn),
      rng_(seed),
      reshuffle_ports_(reshuffle_ports) {
  assert(is_connected(graph_));
}

Graph ChurnAdversary::next_graph(Round, const Configuration&) {
  const std::size_t n = graph_.node_count();
  std::size_t removed = 0;
  // Remove up to churn_ edges, keeping connectivity (retry a few times per
  // removal; bridges are skipped).
  for (std::size_t i = 0; i < churn_; ++i) {
    const auto edges = graph_.edges();
    if (edges.empty()) break;
    bool done = false;
    for (std::size_t attempt = 0; attempt < 8 && !done; ++attempt) {
      const auto& e = edges[rng_.below(edges.size())];
      graph_.remove_edge(e.u, e.v);
      if (is_connected(graph_)) {
        done = true;
        ++removed;
      } else {
        graph_.add_edge(e.u, e.v);  // was a bridge; retry another edge
      }
    }
  }
  // Add back the same number of fresh edges.
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < removed && attempts++ < 64 * (removed + 1)) {
    const NodeId u = static_cast<NodeId>(rng_.below(n));
    const NodeId v = static_cast<NodeId>(rng_.below(n));
    if (u == v || graph_.has_edge(u, v)) continue;
    graph_.add_edge(u, v);
    ++added;
  }
  if (reshuffle_ports_) graph_.shuffle_ports(rng_);
  return graph_;
}

}  // namespace dyndisp
