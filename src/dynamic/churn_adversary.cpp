#include "dynamic/churn_adversary.h"

#include <cassert>
#include <utility>

#include "graph/algorithms.h"
#include "graph/builders.h"

namespace dyndisp {

ChurnAdversary::ChurnAdversary(Graph initial, std::size_t churn,
                               std::uint64_t seed, bool reshuffle_ports)
    : graph_(std::move(initial)),
      churn_(churn),
      seed_(seed),
      rng_(seed),
      reshuffle_ports_(reshuffle_ports) {
  assert(is_connected(graph_));
}

void ChurnAdversary::mutate() {
  const std::size_t n = graph_.node_count();
  std::size_t removed = 0;
  // Remove up to churn_ edges, keeping connectivity (retry a few times per
  // removal; bridges are skipped). The edge list is re-materialized per
  // removal (edges shift as the graph changes) but into recycled storage --
  // the draw sequence is identical to a fresh edges() call.
  for (std::size_t i = 0; i < churn_; ++i) {
    graph_.edges_into(edges_scratch_);
    const auto& edges = edges_scratch_;
    if (edges.empty()) break;
    bool done = false;
    for (std::size_t attempt = 0; attempt < 8 && !done; ++attempt) {
      const auto& e = edges[rng_.below(edges.size())];
      graph_.remove_edge(e.u, e.v);
      if (is_connected(graph_)) {
        done = true;
        ++removed;
      } else {
        graph_.add_edge(e.u, e.v);  // was a bridge; retry another edge
      }
    }
  }
  // Add back the same number of fresh edges.
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < removed && attempts++ < 64 * (removed + 1)) {
    const NodeId u = static_cast<NodeId>(rng_.below(n));
    const NodeId v = static_cast<NodeId>(rng_.below(n));
    if (u == v || graph_.has_edge(u, v)) continue;
    graph_.add_edge(u, v);
    ++added;
  }
  if (reshuffle_ports_) {
    if (n >= builders::kCounterBuilderMinNodes)
      graph_.shuffle_ports_counter(seed_, emissions_, pool_);
    else
      graph_.shuffle_ports(rng_);
  }
  ++emissions_;
}

Graph ChurnAdversary::next_graph(Round r, const Configuration& conf) {
  Graph g;
  next_graph_into(r, conf, g);
  return g;
}

void ChurnAdversary::next_graph_into(Round, const Configuration&, Graph& out) {
  mutate();
  out = graph_;
}

}  // namespace dyndisp
