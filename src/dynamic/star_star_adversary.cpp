#include "dynamic/star_star_adversary.h"

#include <cassert>

namespace dyndisp {

StarStarAdversary::StarStarAdversary(std::size_t n, bool shuffle_ports,
                                     std::uint64_t seed)
    : n_(n), shuffle_ports_(shuffle_ports), rng_(seed) {}

Graph StarStarAdversary::next_graph(Round, const Configuration& conf) {
  assert(conf.node_count() == n_);
  const auto occ = conf.occupancy();
  std::vector<NodeId> occupied, empty;
  for (NodeId v = 0; v < n_; ++v)
    (occ[v] > 0 ? occupied : empty).push_back(v);

  Graph g(n_);
  if (occupied.empty() || empty.empty()) {
    // Degenerate rounds (no robots alive, or every node occupied): any
    // connected graph satisfies the model; a single star does.
    for (NodeId v = 1; v < n_; ++v) g.add_edge(0, v);
  } else {
    const NodeId center_a = occupied.front();
    const NodeId center_b = empty.front();
    for (const NodeId v : occupied)
      if (v != center_a) g.add_edge(center_a, v);
    for (const NodeId v : empty)
      if (v != center_b) g.add_edge(center_b, v);
    g.add_edge(center_a, center_b);
  }
  if (shuffle_ports_) g.shuffle_ports(rng_);
  return g;
}

}  // namespace dyndisp
