// Adversary that plays a pre-recorded sequence of graphs. Used by tests
// that need exact control over every round, by the Fig. 3/4 walkthrough,
// and by the correctness harness's shrinker, which captures any adversary
// into a scripted prefix and replays truncations of it.
//
// Horizon semantics (a documented guarantee, not an accident): for round
// r < script_length() the adversary emits script[r]; for every later round
// it repeats the LAST graph of the script forever. A script is therefore a
// finite description of an infinite execution, and truncating a script to
// any non-empty prefix still yields a well-defined run -- which is exactly
// what the shrinker relies on when it minimizes a failing script.
#pragma once

#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"

namespace dyndisp {

class ScriptedAdversary final : public Adversary {
 public:
  /// Throws std::invalid_argument when `script` is empty or its graphs do
  /// not share one node count (scripts are untrusted input: the harness
  /// parses them back from repro artifacts).
  explicit ScriptedAdversary(std::vector<Graph> script);

  std::string name() const override { return "scripted"; }
  std::size_t node_count() const override { return script_.front().node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// True past the repeat-last horizon and on script lines whose graph
  /// equals the previously emitted one. Compares CONTENT, not just indices,
  /// so the promise survives the engine skipping next_graph calls while the
  /// hint was true (last_idx_ goes stale but only onto an equal graph).
  bool same_as_last(Round r, const Configuration& conf) const override;

  std::size_t script_length() const { return script_.size(); }
  const std::vector<Graph>& script() const { return script_; }

  /// Serializes a script as text: one "g <n> <m>" header per graph followed
  /// by m lines "u v port_u port_v". Ports are explicit so a shuffled
  /// port labeling round-trips exactly (parse_script(serialize_script(s))
  /// reproduces every graph bit-identically).
  static std::string serialize_script(const std::vector<Graph>& script);

  /// Parses the serialize_script format; throws std::invalid_argument on
  /// malformed input (bad header, truncated edges, invalid port labeling).
  static std::vector<Graph> parse_script(const std::string& text);

 private:
  std::vector<Graph> script_;
  std::size_t last_idx_ = 0;
  bool has_emitted_ = false;
};

}  // namespace dyndisp
