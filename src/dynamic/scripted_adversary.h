// Adversary that plays a pre-recorded sequence of graphs; after the script
// runs out it keeps replaying the last graph. Used by tests that need exact
// control over every round and by the Fig. 3/4 walkthrough.
#pragma once

#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"

namespace dyndisp {

class ScriptedAdversary final : public Adversary {
 public:
  /// `script` must be non-empty and all graphs must share a node count.
  explicit ScriptedAdversary(std::vector<Graph> script);

  std::string name() const override { return "scripted"; }
  std::size_t node_count() const override { return script_.front().node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

 private:
  std::vector<Graph> script_;
};

}  // namespace dyndisp
