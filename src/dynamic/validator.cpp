#include "dynamic/validator.h"

#include <sstream>

#include "graph/algorithms.h"

namespace dyndisp {

std::string validate_round_graph(const Graph& g, std::size_t n) {
  if (g.node_count() != n) {
    std::ostringstream os;
    os << "vertex set changed: expected " << n << " nodes, got "
       << g.node_count();
    return os.str();
  }
  if (std::string err = g.validate(); !err.empty()) return err;
  if (!is_connected(g)) return "graph is not connected";
  return {};
}

}  // namespace dyndisp
