// Degenerate adversary that replays a fixed graph every round -- the static
// special case of the dynamic model. Optionally re-shuffles port labels each
// round, which static-graph algorithms cannot tolerate but the paper's
// Algorithm 4 can (it rebuilds all structures from scratch every round).
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class StaticAdversary final : public Adversary {
 public:
  explicit StaticAdversary(Graph g, bool reshuffle_ports = false,
                           std::uint64_t seed = 1);

  std::string name() const override;
  std::size_t node_count() const override { return graph_.node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Static graphs never change once emitted; the port-shuffling variant
  /// relabels every round, so it never claims reuse.
  bool same_as_last(Round r, const Configuration& conf) const override {
    (void)r;
    (void)conf;
    return has_emitted_ && !reshuffle_ports_;
  }

  /// Copy-assigns the (possibly reshuffled) fixed graph into recycled
  /// storage; the reshuffle variant goes through counter port streams at
  /// n >= builders::kCounterBuilderMinNodes.
  void next_graph_into(Round r, const Configuration& conf,
                       Graph& out) override;
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }

 private:
  /// Applies the per-round port relabeling (reshuffle variant only).
  void refresh();

  Graph graph_;
  bool reshuffle_ports_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t emissions_ = 0;  ///< Counter-shuffle draw index (large n).
  ThreadPool* pool_ = nullptr;
  bool has_emitted_ = false;
};

}  // namespace dyndisp
