#include "dynamic/dynamic_graph.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace dyndisp {

Configuration apply_plan(const Graph& g, Configuration conf,
                         const MovePlan& plan) {
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    const Port p = plan[id - 1];
    if (p == kInvalidPort) continue;
    conf.set_position(id, g.neighbor(conf.position(id), p));
  }
  return conf;
}

std::size_t DynamicGraphLog::dynamic_diameter() const {
  std::size_t d = 0;
  for (const Graph& g : history_) d = std::max(d, diameter(g));
  return d;
}

std::size_t DynamicGraphLog::dynamic_max_degree() const {
  std::size_t d = 0;
  for (const Graph& g : history_) d = std::max(d, g.max_degree());
  return d;
}

}  // namespace dyndisp
