#include "dynamic/t_interval_adversary.h"

#include <cassert>
#include <sstream>
#include <utility>

namespace dyndisp {

TIntervalAdversary::TIntervalAdversary(std::unique_ptr<Adversary> inner,
                                       std::size_t t)
    : inner_(std::move(inner)), t_(t) {
  assert(inner_ != nullptr);
  assert(t_ >= 1);
}

std::string TIntervalAdversary::name() const {
  std::ostringstream os;
  os << t_ << "-interval(" << inner_->name() << ")";
  return os.str();
}

Graph TIntervalAdversary::next_graph(Round r, const Configuration& conf) {
  if (!have_current_ || r % t_ == 0) {
    inner_->next_graph_into(r, conf, current_);
    have_current_ = true;
  }
  return current_;
}

void TIntervalAdversary::next_graph_into(Round r, const Configuration& conf,
                                         Graph& out) {
  if (!have_current_ || r % t_ == 0) {
    inner_->next_graph_into(r, conf, current_);
    have_current_ = true;
  }
  out = current_;
}

}  // namespace dyndisp
