#include "dynamic/ring_adversary.h"

#include <algorithm>
#include <cassert>

#include "graph/algorithms.h"

namespace dyndisp {

RingAdversary::RingAdversary(std::size_t n, Strategy strategy,
                             std::uint64_t seed)
    : n_(n), strategy_(strategy), rng_(seed) {
  assert(n >= 3 && "a ring needs at least 3 nodes");
}

std::string RingAdversary::name() const {
  switch (strategy_) {
    case Strategy::kRandomEdge:
      return "dynamic-ring(random-edge)";
    case Strategy::kWorstEdge:
      return "dynamic-ring(worst-edge)";
    case Strategy::kFixedRing:
      return "static-ring";
  }
  return "dynamic-ring";
}

Graph RingAdversary::ring_without(std::size_t missing_edge) const {
  // Ring edges are (i, i+1 mod n), indexed by i. missing_edge == n_ keeps
  // the full cycle.
  Graph g(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    if (i == missing_edge) continue;
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n_));
  }
  return g;
}

Graph RingAdversary::next_graph(Round, const Configuration& conf) {
  switch (strategy_) {
    case Strategy::kFixedRing:
      return ring_without(n_);
    case Strategy::kRandomEdge:
      return ring_without(rng_.below(n_));
    case Strategy::kWorstEdge:
      break;
  }
  // Worst edge: for every candidate missing edge, the ring becomes a path;
  // score a candidate by the hop distance from the heaviest multiplicity
  // node to its nearest empty node on that path (robots must travel at
  // least this far before anything new is occupied).
  const auto occ = conf.occupancy();
  NodeId heaviest = kInvalidNode;
  std::size_t heaviest_count = 1;
  for (NodeId v = 0; v < n_; ++v) {
    if (occ[v] > heaviest_count) {
      heaviest_count = occ[v];
      heaviest = v;
    }
  }
  if (heaviest == kInvalidNode) return ring_without(n_);  // dispersed

  std::size_t best_edge = n_;
  std::size_t best_score = 0;
  for (std::size_t missing = 0; missing < n_; ++missing) {
    const Graph g = ring_without(missing);
    const auto dist = bfs_distances(g, heaviest);
    std::size_t nearest_empty = kUnreachable;
    for (NodeId v = 0; v < n_; ++v)
      if (occ[v] == 0) nearest_empty = std::min(nearest_empty, dist[v]);
    if (nearest_empty != kUnreachable && nearest_empty > best_score) {
      best_score = nearest_empty;
      best_edge = missing;
    }
  }
  return ring_without(best_edge);
}

}  // namespace dyndisp
