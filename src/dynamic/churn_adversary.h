// Edge-churn adversary: evolves one graph gradually. Each round it removes
// up to `churn` randomly chosen edges whose removal keeps the graph
// connected, then adds the same number of random absent edges. This models
// slowly changing topologies (as opposed to RandomAdversary's full rewires)
// and exercises the algorithm's per-round reconstruction on inputs with
// temporal locality.
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class ChurnAdversary final : public Adversary {
 public:
  /// `initial` must be connected; `churn` edges are replaced per round.
  ChurnAdversary(Graph initial, std::size_t churn, std::uint64_t seed,
                 bool reshuffle_ports = false);

  std::string name() const override { return "edge-churn"; }
  std::size_t node_count() const override { return graph_.node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

 private:
  Graph graph_;
  std::size_t churn_;
  Rng rng_;
  bool reshuffle_ports_;
};

}  // namespace dyndisp
