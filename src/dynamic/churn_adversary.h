// Edge-churn adversary: evolves one graph gradually. Each round it removes
// up to `churn` randomly chosen edges whose removal keeps the graph
// connected, then adds the same number of random absent edges. This models
// slowly changing topologies (as opposed to RandomAdversary's full rewires)
// and exercises the algorithm's per-round reconstruction on inputs with
// temporal locality.
#pragma once

#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class ChurnAdversary final : public Adversary {
 public:
  /// `initial` must be connected; `churn` edges are replaced per round.
  ChurnAdversary(Graph initial, std::size_t churn, std::uint64_t seed,
                 bool reshuffle_ports = false);

  std::string name() const override { return "edge-churn"; }
  std::size_t node_count() const override { return graph_.node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Mutates the evolving graph in place (the churn itself is inherently
  /// sequential state evolution), then copy-assigns it into `out` --
  /// recycling out's row capacities round over round. The per-round
  /// reshuffle variant switches to counter port streams (optionally over
  /// the pool) at n >= builders::kCounterBuilderMinNodes.
  void next_graph_into(Round r, const Configuration& conf,
                       Graph& out) override;
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }

 private:
  /// Advances the evolving graph by one round of churn.
  void mutate();

  Graph graph_;
  std::size_t churn_;
  std::uint64_t seed_;
  Rng rng_;
  bool reshuffle_ports_;
  std::uint64_t emissions_ = 0;  ///< Counter-shuffle draw index (large n).
  ThreadPool* pool_ = nullptr;
  /// Edge-list scratch for the removal draws, reused across rounds (the
  /// seed re-materialized the full edge list per removal attempt).
  std::vector<Graph::Edge> edges_scratch_;
};

}  // namespace dyndisp
