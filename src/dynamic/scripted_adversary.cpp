#include "dynamic/scripted_adversary.h"

#include <cassert>
#include <utility>

namespace dyndisp {

ScriptedAdversary::ScriptedAdversary(std::vector<Graph> script)
    : script_(std::move(script)) {
  assert(!script_.empty());
  for (const Graph& g : script_) {
    assert(g.node_count() == script_.front().node_count());
    (void)g;
  }
}

Graph ScriptedAdversary::next_graph(Round r, const Configuration&) {
  const std::size_t idx =
      r < script_.size() ? static_cast<std::size_t>(r) : script_.size() - 1;
  return script_[idx];
}

}  // namespace dyndisp
