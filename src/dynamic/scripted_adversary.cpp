#include "dynamic/scripted_adversary.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace dyndisp {

ScriptedAdversary::ScriptedAdversary(std::vector<Graph> script)
    : script_(std::move(script)) {
  if (script_.empty())
    throw std::invalid_argument("scripted adversary: empty script");
  for (const Graph& g : script_) {
    if (g.node_count() != script_.front().node_count())
      throw std::invalid_argument(
          "scripted adversary: graphs disagree on node count");
  }
}

Graph ScriptedAdversary::next_graph(Round r, const Configuration&) {
  // Repeat-last-graph past the end of the script (see header contract).
  const std::size_t idx =
      r < script_.size() ? static_cast<std::size_t>(r) : script_.size() - 1;
  last_idx_ = idx;
  has_emitted_ = true;
  return script_[idx];
}

bool ScriptedAdversary::same_as_last(Round r, const Configuration&) const {
  if (!has_emitted_) return false;
  const std::size_t idx =
      r < script_.size() ? static_cast<std::size_t>(r) : script_.size() - 1;
  if (idx == last_idx_) return true;
  // Fingerprint fast-reject, then exact compare: the hint is a hard promise.
  return script_[idx].fingerprint() == script_[last_idx_].fingerprint() &&
         script_[idx] == script_[last_idx_];
}

std::string ScriptedAdversary::serialize_script(
    const std::vector<Graph>& script) {
  std::ostringstream os;
  for (const Graph& g : script) {
    os << "g " << g.node_count() << ' ' << g.edge_count() << '\n';
    for (const Graph::Edge& e : g.edges())
      os << e.u << ' ' << e.v << ' ' << e.port_u << ' ' << e.port_v << '\n';
  }
  return os.str();
}

std::vector<Graph> ScriptedAdversary::parse_script(const std::string& text) {
  std::istringstream is(text);
  std::vector<Graph> script;
  std::string tag;
  while (is >> tag) {
    if (tag != "g")
      throw std::invalid_argument("script: expected 'g' header, got '" + tag +
                                  "'");
    std::size_t n = 0, m = 0;
    if (!(is >> n >> m))
      throw std::invalid_argument("script: malformed graph header");
    std::vector<Graph::Edge> edges;
    edges.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      Graph::Edge e;
      if (!(is >> e.u >> e.v >> e.port_u >> e.port_v))
        throw std::invalid_argument("script: truncated edge section");
      edges.push_back(e);
    }
    script.push_back(Graph::from_port_edges(n, edges));
  }
  if (script.empty())
    throw std::invalid_argument("script: no graphs");
  return script;
}

}  // namespace dyndisp
