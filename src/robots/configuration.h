// Robot configurations: which robot stands on which node (Section II).
//
// A configuration Conf_r maps every robot id in [1, k] to a node of G_r.
// Robots can also be dead (crash faults, Section VII); dead robots vanish:
// they occupy nothing, send nothing, and never move again.
//
// Storage is struct-of-arrays: flat per-robot position/alive arrays plus
// derived per-node occupancy counts and occupied/multiplicity bitsets,
// maintained incrementally by every mutation. That turns the engine's
// per-round queries (is_dispersed, occupied_count, alive_count, the
// newly-occupied scan) from O(n + k) allocating passes into O(1) reads or
// word-granular bitset scans -- the hot-loop requirement at k >= 10^5
// (docs/PERFORMANCE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace dyndisp {

class Configuration {
 public:
  Configuration() = default;

  /// k robots (ids 1..k) on an n-node graph; positions must be < n.
  Configuration(std::size_t n, std::vector<NodeId> positions);

  std::size_t robot_count() const { return position_.size(); }
  std::size_t node_count() const { return node_count_; }

  /// Number of alive robots. O(1).
  std::size_t alive_count() const { return alive_count_; }

  NodeId position(RobotId id) const { return position_[id - 1]; }
  void set_position(RobotId id, NodeId v);

  bool alive(RobotId id) const { return alive_[id - 1]; }
  /// Marks a robot crashed. Idempotent.
  void kill(RobotId id);

  /// Alive robots on node v. O(1).
  std::size_t count_at(NodeId v) const { return occ_[v]; }

  /// Robot count per node, counting alive robots only.
  std::vector<std::size_t> occupancy() const;

  /// Alive robot ids on node v, sorted ascending.
  std::vector<RobotId> robots_at(NodeId v) const;

  /// Nodes with at least one alive robot, sorted ascending.
  std::vector<NodeId> occupied_nodes() const;

  /// Nodes with two or more alive robots, sorted ascending.
  std::vector<NodeId> multiplicity_nodes() const;

  /// True when every alive robot is alone on its node (Definition 1 / 6).
  /// O(1).
  bool is_dispersed() const { return multiplicity_count_ == 0; }

  /// Number of distinct occupied nodes (alive robots). O(1).
  std::size_t occupied_count() const { return occupied_count_; }

  /// Number of nodes holding two or more alive robots. O(1).
  std::size_t multiplicity_count() const { return multiplicity_count_; }

  /// Occupancy bitset, bit v set iff node v holds an alive robot; 64 nodes
  /// per word, ceil(n/64) words. The engine's newly-occupied scan works on
  /// these words directly (new = occ & ~ever, per word).
  const std::vector<std::uint64_t>& occupied_words() const {
    return occupied_words_;
  }

  bool operator==(const Configuration&) const = default;

 private:
  /// Occupancy bookkeeping for one robot arriving at (+1) / leaving (-1) v.
  void adjust(NodeId v, int delta);

  std::size_t node_count_ = 0;
  std::vector<NodeId> position_;  // indexed by robot id - 1
  std::vector<bool> alive_;       // indexed by robot id - 1
  // Derived, maintained incrementally (consistent by construction, so the
  // defaulted operator== stays an equivalence on the primary arrays).
  std::vector<std::uint32_t> occ_;             // alive robots per node
  std::vector<std::uint64_t> occupied_words_;  // bit v: occ_[v] >= 1
  std::vector<std::uint64_t> mult_words_;      // bit v: occ_[v] >= 2
  std::size_t alive_count_ = 0;
  std::size_t occupied_count_ = 0;
  std::size_t multiplicity_count_ = 0;
};

}  // namespace dyndisp
