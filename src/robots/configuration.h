// Robot configurations: which robot stands on which node (Section II).
//
// A configuration Conf_r maps every robot id in [1, k] to a node of G_r.
// Robots can also be dead (crash faults, Section VII); dead robots vanish:
// they occupy nothing, send nothing, and never move again.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace dyndisp {

class Configuration {
 public:
  Configuration() = default;

  /// k robots (ids 1..k) on an n-node graph; positions must be < n.
  Configuration(std::size_t n, std::vector<NodeId> positions);

  std::size_t robot_count() const { return position_.size(); }
  std::size_t node_count() const { return node_count_; }

  /// Number of alive robots.
  std::size_t alive_count() const;

  NodeId position(RobotId id) const { return position_[id - 1]; }
  void set_position(RobotId id, NodeId v);

  bool alive(RobotId id) const { return alive_[id - 1]; }
  /// Marks a robot crashed. Idempotent.
  void kill(RobotId id) { alive_[id - 1] = false; }

  /// Robot count per node, counting alive robots only.
  std::vector<std::size_t> occupancy() const;

  /// Alive robot ids on node v, sorted ascending.
  std::vector<RobotId> robots_at(NodeId v) const;

  /// Nodes with at least one alive robot, sorted ascending.
  std::vector<NodeId> occupied_nodes() const;

  /// Nodes with two or more alive robots, sorted ascending.
  std::vector<NodeId> multiplicity_nodes() const;

  /// True when every alive robot is alone on its node (Definition 1 / 6).
  bool is_dispersed() const;

  /// Number of distinct occupied nodes (alive robots).
  std::size_t occupied_count() const;

  bool operator==(const Configuration&) const = default;

 private:
  std::size_t node_count_ = 0;
  std::vector<NodeId> position_;  // indexed by robot id - 1
  std::vector<bool> alive_;       // indexed by robot id - 1
};

}  // namespace dyndisp
