#include "robots/configuration.h"

#include <bit>
#include <cassert>

namespace dyndisp {

namespace {
constexpr std::size_t words_for(std::size_t n) { return (n + 63) / 64; }
}  // namespace

Configuration::Configuration(std::size_t n, std::vector<NodeId> positions)
    : node_count_(n),
      position_(std::move(positions)),
      alive_(position_.size(), true),
      occ_(n, 0),
      occupied_words_(words_for(n), 0),
      mult_words_(words_for(n), 0),
      alive_count_(position_.size()) {
  assert(position_.size() <= n && "the model requires k <= n");
  for (const NodeId v : position_) {
    assert(v < n);
    adjust(v, +1);
  }
}

void Configuration::adjust(NodeId v, int delta) {
  std::uint32_t& c = occ_[v];
  const std::uint64_t bit = std::uint64_t{1} << (v % 64);
  if (delta > 0) {
    ++c;
    if (c == 1) {
      occupied_words_[v / 64] |= bit;
      ++occupied_count_;
    } else if (c == 2) {
      mult_words_[v / 64] |= bit;
      ++multiplicity_count_;
    }
  } else {
    assert(c > 0);
    --c;
    if (c == 0) {
      occupied_words_[v / 64] &= ~bit;
      --occupied_count_;
    } else if (c == 1) {
      mult_words_[v / 64] &= ~bit;
      --multiplicity_count_;
    }
  }
}

void Configuration::set_position(RobotId id, NodeId v) {
  assert(id >= 1 && id <= position_.size());
  assert(v < node_count_);
  NodeId& pos = position_[id - 1];
  if (alive_[id - 1] && pos != v) {
    adjust(pos, -1);
    adjust(v, +1);
  }
  pos = v;
}

void Configuration::kill(RobotId id) {
  assert(id >= 1 && id <= position_.size());
  if (!alive_[id - 1]) return;
  alive_[id - 1] = false;
  --alive_count_;
  adjust(position_[id - 1], -1);
}

std::vector<std::size_t> Configuration::occupancy() const {
  return std::vector<std::size_t>(occ_.begin(), occ_.end());
}

std::vector<RobotId> Configuration::robots_at(NodeId v) const {
  std::vector<RobotId> ids;
  for (std::size_t i = 0; i < position_.size(); ++i)
    if (alive_[i] && position_[i] == v) ids.push_back(static_cast<RobotId>(i + 1));
  return ids;
}

std::vector<NodeId> Configuration::occupied_nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(occupied_count_);
  for (std::size_t w = 0; w < occupied_words_.size(); ++w) {
    std::uint64_t bits = occupied_words_[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      nodes.push_back(static_cast<NodeId>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  return nodes;
}

std::vector<NodeId> Configuration::multiplicity_nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(multiplicity_count_);
  for (std::size_t w = 0; w < mult_words_.size(); ++w) {
    std::uint64_t bits = mult_words_[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      nodes.push_back(static_cast<NodeId>(w * 64 + b));
      bits &= bits - 1;
    }
  }
  return nodes;
}

}  // namespace dyndisp
