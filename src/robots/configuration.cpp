#include "robots/configuration.h"

#include <algorithm>
#include <cassert>

namespace dyndisp {

Configuration::Configuration(std::size_t n, std::vector<NodeId> positions)
    : node_count_(n),
      position_(std::move(positions)),
      alive_(position_.size(), true) {
  assert(position_.size() <= n && "the model requires k <= n");
  for (const NodeId v : position_) {
    assert(v < n);
    (void)v;
  }
}

std::size_t Configuration::alive_count() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

void Configuration::set_position(RobotId id, NodeId v) {
  assert(id >= 1 && id <= position_.size());
  assert(v < node_count_);
  position_[id - 1] = v;
}

std::vector<std::size_t> Configuration::occupancy() const {
  std::vector<std::size_t> occ(node_count_, 0);
  for (std::size_t i = 0; i < position_.size(); ++i)
    if (alive_[i]) ++occ[position_[i]];
  return occ;
}

std::vector<RobotId> Configuration::robots_at(NodeId v) const {
  std::vector<RobotId> ids;
  for (std::size_t i = 0; i < position_.size(); ++i)
    if (alive_[i] && position_[i] == v) ids.push_back(static_cast<RobotId>(i + 1));
  return ids;
}

std::vector<NodeId> Configuration::occupied_nodes() const {
  const auto occ = occupancy();
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < occ.size(); ++v)
    if (occ[v] > 0) nodes.push_back(v);
  return nodes;
}

std::vector<NodeId> Configuration::multiplicity_nodes() const {
  const auto occ = occupancy();
  std::vector<NodeId> nodes;
  for (NodeId v = 0; v < occ.size(); ++v)
    if (occ[v] > 1) nodes.push_back(v);
  return nodes;
}

bool Configuration::is_dispersed() const {
  return multiplicity_nodes().empty();
}

std::size_t Configuration::occupied_count() const {
  return occupied_nodes().size();
}

}  // namespace dyndisp
