// Initial placement generators for Conf_0.
//
// The paper distinguishes *rooted* initial configurations (all robots on one
// node; used by the lower bound of Theorem 3) from arbitrary ones. The
// placements here cover both plus the specific trap configuration of Fig. 1.
#pragma once

#include <cstddef>
#include <vector>

#include "robots/configuration.h"
#include "util/rng.h"
#include "util/types.h"

namespace dyndisp::placement {

/// All k robots on node `root` (rooted configuration).
Configuration rooted(std::size_t n, std::size_t k, NodeId root = 0);

/// Robots placed independently and uniformly at random on nodes.
Configuration uniform_random(std::size_t n, std::size_t k, Rng& rng);

/// Robots spread over `groups` random distinct nodes, sizes as equal as
/// possible (yields several multiplicity nodes). Requires groups <= k,
/// groups <= n.
Configuration grouped(std::size_t n, std::size_t k, std::size_t groups,
                      Rng& rng);

/// The Fig. 1 trap: nodes 0..k-2 form the occupied path positions; node 0
/// ("v" in the figure) holds robots {1, 2}; nodes 1..k-2 hold one robot each.
/// Caller is responsible for pairing this with the path-trap adversary.
Configuration figure1(std::size_t n, std::size_t k);

/// Explicit positions (1-based robot id i+1 sits on positions[i]).
Configuration explicit_positions(std::size_t n, std::vector<NodeId> positions);

}  // namespace dyndisp::placement
