#include "robots/placement.h"

#include <cassert>
#include <numeric>

namespace dyndisp::placement {

Configuration rooted(std::size_t n, std::size_t k, NodeId root) {
  assert(k <= n && root < n);
  return Configuration(n, std::vector<NodeId>(k, root));
}

Configuration uniform_random(std::size_t n, std::size_t k, Rng& rng) {
  assert(k <= n);
  std::vector<NodeId> pos(k);
  for (auto& p : pos) p = static_cast<NodeId>(rng.below(n));
  return Configuration(n, std::move(pos));
}

Configuration grouped(std::size_t n, std::size_t k, std::size_t groups,
                      Rng& rng) {
  assert(groups >= 1 && groups <= k && groups <= n);
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  rng.shuffle(nodes);
  std::vector<NodeId> pos(k);
  for (std::size_t i = 0; i < k; ++i) pos[i] = nodes[i % groups];
  return Configuration(n, std::move(pos));
}

Configuration figure1(std::size_t n, std::size_t k) {
  assert(k >= 3 && k <= n && "figure-1 trap needs k >= 3");
  std::vector<NodeId> pos(k);
  pos[0] = 0;  // the doubled node "v"
  pos[1] = 0;
  for (std::size_t i = 2; i < k; ++i) pos[i] = static_cast<NodeId>(i - 1);
  return Configuration(n, std::move(pos));
}

Configuration explicit_positions(std::size_t n, std::vector<NodeId> positions) {
  return Configuration(n, std::move(positions));
}

}  // namespace dyndisp::placement
