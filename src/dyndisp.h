// Umbrella header: everything a downstream user of the dyndisp library
// needs. Individual headers remain includable on their own; this exists for
// quick starts and REPL-style experimentation.
#pragma once

#include "analysis/experiment.h"   // IWYU pragma: export
#include "analysis/verify.h"       // IWYU pragma: export
#include "baselines/blind_walk.h"  // IWYU pragma: export
#include "baselines/dfs_dispersion.h"  // IWYU pragma: export
#include "baselines/greedy_local.h"    // IWYU pragma: export
#include "baselines/random_walk.h"     // IWYU pragma: export
#include "campaign/registry.h"         // IWYU pragma: export
#include "campaign/scheduler.h"        // IWYU pragma: export
#include "campaign/spec.h"             // IWYU pragma: export
#include "campaign/store.h"            // IWYU pragma: export
#include "core/component.h"            // IWYU pragma: export
#include "core/disjoint_paths.h"       // IWYU pragma: export
#include "core/dispersion.h"           // IWYU pragma: export
#include "core/planner.h"              // IWYU pragma: export
#include "core/spanning_tree.h"        // IWYU pragma: export
#include "dynamic/churn_adversary.h"   // IWYU pragma: export
#include "dynamic/clique_trap_adversary.h"  // IWYU pragma: export
#include "dynamic/dynamic_graph.h"          // IWYU pragma: export
#include "dynamic/path_trap_adversary.h"    // IWYU pragma: export
#include "dynamic/random_adversary.h"       // IWYU pragma: export
#include "dynamic/ring_adversary.h"         // IWYU pragma: export
#include "dynamic/scripted_adversary.h"     // IWYU pragma: export
#include "dynamic/star_star_adversary.h"    // IWYU pragma: export
#include "dynamic/static_adversary.h"       // IWYU pragma: export
#include "dynamic/t_interval_adversary.h"   // IWYU pragma: export
#include "dynamic/validator.h"              // IWYU pragma: export
#include "graph/algorithms.h"               // IWYU pragma: export
#include "graph/builders.h"                 // IWYU pragma: export
#include "graph/graph.h"                    // IWYU pragma: export
#include "graph/io.h"                       // IWYU pragma: export
#include "graph/local_view.h"               // IWYU pragma: export
#include "robots/configuration.h"           // IWYU pragma: export
#include "robots/placement.h"               // IWYU pragma: export
#include "sim/byzantine.h"                  // IWYU pragma: export
#include "sim/engine.h"                     // IWYU pragma: export
#include "sim/fault.h"                      // IWYU pragma: export
#include "sim/sensing.h"                    // IWYU pragma: export
#include "sim/trace.h"                      // IWYU pragma: export
#include "util/rng.h"                       // IWYU pragma: export
#include "util/stats.h"                     // IWYU pragma: export
#include "viz/svg.h"                        // IWYU pragma: export
