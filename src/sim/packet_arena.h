// Flat CSR storage for the per-round packet broadcast, plus the view types
// that let every consumer read packets without caring how they are stored.
//
// At k = 10^5 the per-round broadcast held ~12M heap allocations per run:
// every InfoPacket owns a `robots` vector and one more per occupied
// neighbor. PacketArena replaces all of them with three flat arrays -- a
// header table, a neighbor-entry table, and a single RobotId pool -- that
// persist across rounds and are refilled in place. The wire format is an
// observable (its bit metering feeds the Lemma-8/Theorem-4/5 oracles), so
// the arena never changes what a packet SAYS, only where its bytes live:
// PacketView/NeighborView present the identical logical record over either
// backend, and PacketSet lets the engine, planner, and caches hold "this
// round's broadcast" without knowing which representation carries it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/info_packet.h"
#include "util/types.h"

namespace dyndisp {

/// One occupied neighbor inside a flat packet: NeighborInfo with the robot
/// list replaced by a range into the arena's shared pool.
struct ArenaNeighbor {
  Port port = kInvalidPort;
  RobotId min_robot = kNoRobot;
  std::uint32_t count = 0;         ///< Robots on the neighbor (multiplicity).
  std::uint32_t robots_begin = 0;  ///< Range into PacketArena::pool.
  std::uint32_t robots_count = 0;
};

/// One flat packet: InfoPacket with both payload vectors replaced by ranges
/// into the arena's shared tables.
struct ArenaPacket {
  RobotId sender = kNoRobot;
  std::uint32_t count = 0;         ///< Robots on the sender's node.
  std::uint32_t degree = 0;        ///< Degree of the node in G_r.
  std::uint32_t robots_begin = 0;  ///< Range into PacketArena::pool.
  std::uint32_t robots_count = 0;
  std::uint32_t nb_begin = 0;      ///< Range into PacketArena::neighbors.
  std::uint32_t nb_count = 0;
};

/// The whole round's broadcast in three flat arrays. Headers are sorted by
/// sender after assembly; each packet's pool slice is contiguous (sender
/// robots first, then each neighbor's robots in port order), so a delta
/// rebuild can copy a clean packet with one pool memcpy. Ranges are
/// explicit, which means sorting the header table never moves the pool.
struct PacketArena {
  std::vector<ArenaPacket> headers;
  std::vector<ArenaNeighbor> neighbors;
  std::vector<RobotId> pool;

  void clear() {
    headers.clear();
    neighbors.clear();
    pool.clear();
  }
};

/// Read-only view of one occupied-neighbor record, over either backend.
class NeighborView {
 public:
  NeighborView() = default;
  explicit NeighborView(const NeighborInfo& info) : legacy_(&info) {}
  NeighborView(const PacketArena& arena, const ArenaNeighbor& entry)
      : arena_(&arena), entry_(&entry) {}

  [[nodiscard]] Port port() const {
    return legacy_ ? legacy_->port : entry_->port;
  }
  [[nodiscard]] RobotId min_robot() const {
    return legacy_ ? legacy_->min_robot : entry_->min_robot;
  }
  [[nodiscard]] std::size_t count() const {
    return legacy_ ? legacy_->count : entry_->count;
  }
  [[nodiscard]] std::size_t robot_count() const {
    return legacy_ ? legacy_->robots.size() : entry_->robots_count;
  }
  /// Contiguous in both backends.
  [[nodiscard]] const RobotId* robots() const {
    return legacy_ ? legacy_->robots.data()
                   : arena_->pool.data() + entry_->robots_begin;
  }
  [[nodiscard]] RobotId robot(std::size_t i) const { return robots()[i]; }

  /// Deep field-wise equality, any backend pairing.
  friend bool operator==(const NeighborView& a, const NeighborView& b);

 private:
  const NeighborInfo* legacy_ = nullptr;
  const PacketArena* arena_ = nullptr;
  const ArenaNeighbor* entry_ = nullptr;
};

/// Read-only view of one packet, over either backend. Copyable and cheap;
/// everything the consumers previously read off an InfoPacket is here.
class PacketView {
 public:
  PacketView() = default;
  explicit PacketView(const InfoPacket& pkt) : legacy_(&pkt) {}
  PacketView(const PacketArena& arena, std::size_t index)
      : arena_(&arena), header_(&arena.headers[index]) {}

  [[nodiscard]] RobotId sender() const {
    return legacy_ ? legacy_->sender : header_->sender;
  }
  [[nodiscard]] std::size_t count() const {
    return legacy_ ? legacy_->count : header_->count;
  }
  [[nodiscard]] std::size_t degree() const {
    return legacy_ ? legacy_->degree : header_->degree;
  }
  [[nodiscard]] std::size_t robot_count() const {
    return legacy_ ? legacy_->robots.size() : header_->robots_count;
  }
  /// Contiguous in both backends.
  [[nodiscard]] const RobotId* robots() const {
    return legacy_ ? legacy_->robots.data()
                   : arena_->pool.data() + header_->robots_begin;
  }
  [[nodiscard]] RobotId robot(std::size_t i) const { return robots()[i]; }
  [[nodiscard]] std::size_t neighbor_count() const {
    return legacy_ ? legacy_->occupied_neighbors.size() : header_->nb_count;
  }
  [[nodiscard]] NeighborView neighbor(std::size_t i) const {
    return legacy_ ? NeighborView(legacy_->occupied_neighbors[i])
                   : NeighborView(*arena_,
                                  arena_->neighbors[header_->nb_begin + i]);
  }

  /// Deep record equality, any backend pairing (used by the plan cache key
  /// check and the structure cache's sender-wise delta walk).
  friend bool operator==(const PacketView& a, const PacketView& b);

 private:
  const InfoPacket* legacy_ = nullptr;
  const PacketArena* arena_ = nullptr;
  const ArenaPacket* header_ = nullptr;
};

/// One round's broadcast, whichever backend carries it. Owning handles keep
/// the storage alive for caches; `borrow` wraps a caller-owned vector for
/// the synchronous compat entry points (tests, plan_round helpers) without
/// a copy. A default-constructed (or nullptr) set is "no packets" -- the
/// local-communication case -- and is falsy.
class PacketSet {
 public:
  using LegacyHandle = std::shared_ptr<const std::vector<InfoPacket>>;
  using ArenaHandle = std::shared_ptr<const PacketArena>;

  PacketSet() = default;
  PacketSet(std::nullptr_t) {}  // NOLINT: nullptr means "no packets"
  PacketSet(LegacyHandle legacy) : legacy_(std::move(legacy)) {}  // NOLINT
  PacketSet(ArenaHandle arena) : arena_(std::move(arena)) {}      // NOLINT

  /// Non-owning wrapper; the vector must outlive every use of the set.
  [[nodiscard]] static PacketSet borrow(const std::vector<InfoPacket>& v) {
    PacketSet s;
    s.borrowed_ = &v;
    return s;
  }

  [[nodiscard]] std::size_t size() const {
    if (const std::vector<InfoPacket>* v = legacy_vec()) return v->size();
    return arena_ ? arena_->headers.size() : 0;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  explicit operator bool() const {
    return legacy_ != nullptr || arena_ != nullptr || borrowed_ != nullptr;
  }
  [[nodiscard]] PacketView operator[](std::size_t i) const {
    if (const std::vector<InfoPacket>* v = legacy_vec())
      return PacketView((*v)[i]);
    return PacketView(*arena_, i);
  }

  [[nodiscard]] bool flat() const { return arena_ != nullptr; }
  /// True when the set keeps its storage alive (safe to retain in a cache).
  [[nodiscard]] bool owned() const {
    return legacy_ != nullptr || arena_ != nullptr;
  }
  /// The backing vector when legacy-backed (owned or borrowed), else null.
  [[nodiscard]] const std::vector<InfoPacket>* legacy_vec() const {
    return legacy_ ? legacy_.get() : borrowed_;
  }
  [[nodiscard]] const LegacyHandle& legacy_handle() const { return legacy_; }
  [[nodiscard]] const ArenaHandle& arena_handle() const { return arena_; }

  /// Storage identity: equal pointers => the identical broadcast (the
  /// republish fast path); distinct pointers say nothing.
  [[nodiscard]] const void* identity() const {
    if (arena_) return arena_.get();
    return legacy_vec();
  }

  void reset() {
    legacy_.reset();
    arena_.reset();
    borrowed_ = nullptr;
  }

  /// Deep record-sequence equality, any backend pairing; identity fast path.
  friend bool operator==(const PacketSet& a, const PacketSet& b);

 private:
  LegacyHandle legacy_;
  ArenaHandle arena_;
  const std::vector<InfoPacket>* borrowed_ = nullptr;
};

/// Order-sensitive FNV-1a digest of every field of every packet, identical
/// across backends; the golden packet-trace fixtures pin it per round.
[[nodiscard]] std::uint64_t packet_set_digest(const PacketSet& packets);

}  // namespace dyndisp
