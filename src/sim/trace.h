// Execution traces: optional per-round recording of graphs, configurations,
// and moves, used by the worked-example bench (Figs. 3/4), the examples, and
// debugging. Traces are heavy; the engine records them only when asked.
#pragma once

#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "robots/configuration.h"
#include "util/types.h"

namespace dyndisp {

struct RoundRecord {
  Round round = 0;
  Graph graph;                    ///< G_r
  Configuration before;           ///< Configuration at the start of the round.
  MovePlan moves;                 ///< Chosen exit ports (0 = stayed).
  Configuration after;            ///< Configuration after moves.
  std::size_t newly_occupied = 0; ///< Nodes occupied now but not before.
};

class Trace {
 public:
  void add(RoundRecord rec) { records_.push_back(std::move(rec)); }

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const RoundRecord& at(std::size_t i) const { return records_[i]; }
  const std::vector<RoundRecord>& records() const { return records_; }

  /// Human-readable render of round `i` (occupancy + moves), for examples.
  std::string describe_round(std::size_t i) const;

 private:
  std::vector<RoundRecord> records_;
};

/// Serializes a trace to JSON (dependency-free writer): per round the graph
/// (node count + edge list with both port labels), robot positions before
/// and after, chosen exit ports, and the newly-occupied count. Suitable for
/// external replay/visualization tooling; emitted by the dyndisp_sim CLI.
std::string trace_to_json(const Trace& trace);

}  // namespace dyndisp
