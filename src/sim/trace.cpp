#include "sim/trace.h"

#include <sstream>

namespace dyndisp {

std::string Trace::describe_round(std::size_t i) const {
  const RoundRecord& rec = records_[i];
  std::ostringstream os;
  os << "round " << rec.round << ": n=" << rec.graph.node_count()
     << " m=" << rec.graph.edge_count() << "\n";
  os << "  occupied before: ";
  for (const NodeId v : rec.before.occupied_nodes())
    os << v << "(x" << rec.before.robots_at(v).size() << ") ";
  os << "\n  moves: ";
  bool any = false;
  for (RobotId id = 1; id <= rec.moves.size(); ++id) {
    if (rec.moves[id - 1] == kInvalidPort) continue;
    os << "r" << id << ":" << rec.before.position(id) << "-p"
       << rec.moves[id - 1] << "->" << rec.after.position(id) << " ";
    any = true;
  }
  if (!any) os << "(none)";
  os << "\n  occupied after:  ";
  for (const NodeId v : rec.after.occupied_nodes())
    os << v << "(x" << rec.after.robots_at(v).size() << ") ";
  os << "(+" << rec.newly_occupied << " new)\n";
  return os.str();
}

namespace {

void positions_to_json(std::ostringstream& os, const Configuration& conf) {
  os << '[';
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (id > 1) os << ',';
    if (conf.alive(id))
      os << conf.position(id);
    else
      os << "null";
  }
  os << ']';
}

}  // namespace

std::string trace_to_json(const Trace& trace) {
  std::ostringstream os;
  os << "{\"rounds\":[";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const RoundRecord& rec = trace.at(i);
    if (i) os << ',';
    os << "{\"round\":" << rec.round;
    os << ",\"graph\":{\"n\":" << rec.graph.node_count() << ",\"edges\":[";
    const auto edges = rec.graph.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (e) os << ',';
      os << '[' << edges[e].u << ',' << edges[e].v << ',' << edges[e].port_u
         << ',' << edges[e].port_v << ']';
    }
    os << "]}";
    os << ",\"before\":";
    positions_to_json(os, rec.before);
    os << ",\"moves\":[";
    for (std::size_t m = 0; m < rec.moves.size(); ++m) {
      if (m) os << ',';
      os << rec.moves[m];
    }
    os << "]";
    os << ",\"after\":";
    positions_to_json(os, rec.after);
    os << ",\"newly_occupied\":" << rec.newly_occupied << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace dyndisp
