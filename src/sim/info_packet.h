// Information packets (Section V of the paper).
//
// In each round, the robots on every occupied node locally agree that the
// smallest-ID robot among them broadcasts one packet
//   InfoPacket_r(v) = { a_i, count(a_i), N_r^occupied(v_i), P_r^occupied(v_i) }
// containing the sender's ID, the robot count at its node, and -- when
// 1-neighborhood knowledge is available -- which ports lead to occupied
// neighbors along with the IDs/counts of the robots there. Under global
// communication every robot receives every packet; under local communication
// packets do not propagate (co-located robots see each other directly).
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace dyndisp {

/// One occupied neighbor as described inside a packet: the port of the
/// sender's node leading to it, plus who is standing there.
struct NeighborInfo {
  Port port = kInvalidPort;       ///< Port at the sender's node.
  RobotId min_robot = kNoRobot;   ///< Smallest robot ID on the neighbor
                                  ///< (the neighbor node's name, Obs. 1).
  std::size_t count = 0;          ///< Robots on the neighbor (multiplicity).
  std::vector<RobotId> robots;    ///< All robot IDs there, ascending.

  bool operator==(const NeighborInfo&) const = default;
};

/// The per-node broadcast of Section V.
///
/// One addition to the paper's quadruple: `degree`, the sender node's degree
/// in G_r. Algorithm 3 requires every robot to compute LeafNodeSet(ST) --
/// the tree nodes with at least one EMPTY neighbor -- for remote nodes too,
/// which needs |N_r(v)| alongside |N_r^occupied(v)|. The field costs
/// O(log n) bits of *temporary* (within-round) memory only, so Lemma 8 is
/// unaffected.
struct InfoPacket {
  RobotId sender = kNoRobot;      ///< Smallest robot ID on the node.
  std::size_t count = 0;          ///< Robots on the node.
  std::size_t degree = 0;         ///< Degree of the node in G_r.
  std::vector<RobotId> robots;    ///< All robot IDs on the node, ascending.
  /// Occupied neighbors in increasing port order. Empty when the sender has
  /// no 1-neighborhood knowledge or no occupied neighbor.
  std::vector<NeighborInfo> occupied_neighbors;

  bool operator==(const InfoPacket&) const = default;
};

}  // namespace dyndisp
