// Cross-round reuse hints, attached by the engine to every RobotView.
//
// The hints identify the (graph, configuration, sensing-model) triple the
// round's packet broadcast was assembled from, in a form cheap enough to
// compare across rounds: the graph's incremental structural fingerprint and
// an XOR digest of the alive robots' positions. Algorithm 1-3 structures are
// pure functions of the packet set (Lemma 4), and the packet set is a pure
// function of this triple -- which is what makes the StructureCache keyed on
// these hints an exact memoization. The digests only SELECT cache entries;
// every consumer confirms candidates by comparing actual packet contents, so
// a digest collision costs a missed reuse, never a wrong plan.
//
// `valid` is false when the engine cannot vouch for the triple -- structure
// caching disabled, local communication, or a Byzantine model tampering
// packets after assembly (tampered packets are not a function of the triple).
// Invalid hints make every consumer fall back to the uncached path.
#pragma once

#include <cstdint>

namespace dyndisp {

/// Engine-observed relation between this round's graph and the previous
/// round's, riding with the hints so plan-layer consumers can pick their
/// strategy without re-deriving it. kSame and kSmallDelta are the regimes
/// where the StructureCache's exact-hit/delta machinery pays off;
/// kFullChurn rounds (the random adversaries rewire everything every round)
/// can never reuse cross-round structures, so consulting -- and, worse,
/// RETAINING into -- the cache only pins a dead copy of the round's packet
/// storage. kUnknown (plan probes, hint-less callers) keeps the legacy
/// always-consult behavior. Purely a performance signal: every route
/// computes the bitwise-identical plan (the differential suite proves it).
enum class GraphChange : std::uint8_t {
  kUnknown,
  kSame,        ///< G_r operator== G_{r-1}.
  kSmallDelta,  ///< G_r differs from G_{r-1} on few nodes (engine cap n/4).
  kFullChurn,   ///< G_r is essentially unrelated to G_{r-1}.
};

struct ReuseHints {
  bool valid = false;
  /// Whether the packets carry 1-neighborhood information (part of the
  /// packet-defining triple; the fingerprint and digest do not capture it).
  bool neighborhood = false;
  std::uint64_t graph_fp = 0;    ///< Graph::fingerprint() of the round graph.
  std::uint64_t conf_digest = 0; ///< XOR digest of alive (robot, node) pairs.
  GraphChange change = GraphChange::kUnknown;  ///< Graph-vs-last-round signal.
};

}  // namespace dyndisp
