// Byzantine robots -- the paper's third future-work direction, explored as
// a NEGATIVE result: Algorithm 4 is built on every robot trusting every
// packet, and a single liar can deadlock it. This module injects lies at
// the packet layer (and optionally erratic movement) so the failure modes
// can be measured; see bench_byzantine and EXPERIMENTS.md.
//
// A liar interferes only when it is its node's broadcaster (the smallest ID
// on the node -- exactly when the paper's protocol hands it the megaphone).
// Supported lies:
//   * kHideMultiplicity: the packet claims count = 1 and lists only the
//     liar. A multiplicity node that never looks like one is never chosen
//     as a spanning-tree root, so its surplus robots are never slid:
//     dispersion deadlocks while the liar sits on a crowded node.
//   * kHideEmptyNeighbors: the packet reports degree = |occupied neighbors|,
//     making the node ineligible for LeafNodeSet. Components whose only
//     frontier runs through the liar lose all their root paths.
//   * kErraticMoves: the liar additionally ignores the protocol and walks
//     through a pseudo-random port every round.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "robots/configuration.h"
#include "sim/info_packet.h"
#include "sim/packet_arena.h"
#include "util/types.h"

namespace dyndisp {

enum class ByzantineLie {
  kHideMultiplicity,
  kHideEmptyNeighbors,
  kErraticMoves,
};

class ByzantineModel {
 public:
  ByzantineModel(std::set<RobotId> liars, ByzantineLie lie);

  const std::set<RobotId>& liars() const { return liars_; }
  ByzantineLie lie() const { return lie_; }
  std::string lie_name() const;

  /// Corrupts the round's packet set in place. Packets broadcast by honest
  /// robots are untouched; packets whose sender is a liar are rewritten per
  /// the configured lie. Also fixes up how OTHER packets describe the
  /// liar's node, since 1-neighborhood *sensing* of occupancy cannot be
  /// faked -- only the packet contents can (counts/IDs travel in packets).
  void tamper(std::vector<InfoPacket>& packets) const;

  /// Flat-arena twin: rewrites the same packets to the same logical records
  /// (a liar's pool slice starts with the liar itself -- robot lists ascend
  /// and the sender is the minimum -- so hiding multiplicity is a range
  /// shrink, never a pool rewrite).
  void tamper(PacketArena& packets) const;

  /// Movement override for kErraticMoves: the liar picks a pseudo-random
  /// port (deterministic in (id, round)); other robots keep their plan.
  Port override_move(RobotId id, Port planned, std::size_t degree,
                     Round round) const;

 private:
  std::set<RobotId> liars_;
  ByzantineLie lie_;
};

}  // namespace dyndisp
