// Crash-fault schedules (Section VII).
//
// A crashed robot "behaves as if it has vanished from the system": it stops
// communicating, stops moving, and leaves no sensing footprint. Crashes are
// scheduled per (round, robot) and can strike either before the Communicate
// phase (the robot sends no packet that round and components may split) or
// after it (the robot took part in communication -- other robots planned
// around it -- but does not execute its move). Moves are instantaneous, so
// there is no mid-edge crash.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace dyndisp {

enum class CrashPhase {
  kBeforeCommunicate,  ///< Vanishes before packets are exchanged.
  kAfterCommunicate,   ///< Communicated, then vanishes before moving.
};

struct CrashEvent {
  Round round = 0;
  RobotId robot = kNoRobot;
  CrashPhase phase = CrashPhase::kBeforeCommunicate;
};

/// A full crash schedule for one run.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<CrashEvent> events);

  /// No faults at all.
  static FaultSchedule none() { return FaultSchedule{}; }

  /// `f` distinct robots crash at uniformly random rounds in [0, horizon)
  /// with uniformly random phases.
  static FaultSchedule random(std::size_t k, std::size_t f, Round horizon,
                              Rng& rng);

  /// Crash events scheduled for `round` in the given phase.
  std::vector<RobotId> crashes_at(Round round, CrashPhase phase) const;

  std::size_t fault_count() const { return events_.size(); }
  const std::vector<CrashEvent>& events() const { return events_; }

 private:
  std::vector<CrashEvent> events_;
  std::multimap<Round, CrashEvent> by_round_;
};

}  // namespace dyndisp
