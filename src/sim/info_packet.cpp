#include "sim/info_packet.h"

// InfoPacket and NeighborInfo are plain aggregates; their construction from
// a (graph, configuration) pair lives in sim/sensing.cpp, which owns the
// model-visibility rules.
