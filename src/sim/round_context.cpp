#include "sim/round_context.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "graph/fingerprint.h"
#include "util/parallel.h"

namespace dyndisp {

void RoundContext::begin_round(const Configuration& conf,
                               const std::vector<StateHandle>& states,
                               bool build_state_lists) {
  assert(states.size() == conf.robot_count());
  const std::size_t n = conf.node_count();

  // Retire the finished round's broadcast into the delta-assembly source.
  prev_packets_ = std::move(packets_);
  packets_ = nullptr;
  prev_packet_bits_each_.swap(packet_bits_each_);
  prev_packet_nodes_.swap(packet_nodes_);
  prev_packet_bits_ = packet_bits_;
  packet_bits_each_.clear();
  packet_nodes_.clear();
  packet_bits_ = 0;

  // Rebuild the node index into the retained CSR double buffer: a counting
  // sort into two flat arrays whose capacity persists across rounds, so
  // steady-state rounds allocate nothing here.
  std::swap(prev_index_, index_);
  if (index_.node_count() == n) ++counters_.scratch_reuses;
  index_.build(conf);
  conf_digest_ = 0;
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    conf_digest_ ^= fp_mix((static_cast<std::uint64_t>(id) << 32) |
                           conf.position(id));
  }

  // Diff occupancy against the previous round. A node-count change (never
  // happens mid-run under one adversary, but contexts are reusable) voids
  // the comparison basis and the retired broadcast with it.
  changed_nodes_.clear();
  if (first_round_ || prev_index_.node_count() != n) {
    for (NodeId v = 0; v < n; ++v)
      if (!index_.empty(v)) changed_nodes_.push_back(v);
    occupancy_changed_ = true;
    prev_packets_ = nullptr;
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (index_.count(v) != prev_index_.count(v) ||
          !std::equal(index_.begin(v), index_.end(v), prev_index_.begin(v)))
        changed_nodes_.push_back(v);
    }
    occupancy_changed_ = !changed_nodes_.empty();
  }
  first_round_ = false;

  // Per-node state lists. A node keeps last round's list handle exactly
  // when the list it needs now is the list it already holds: same robots,
  // and every member's state handle still the one serialized for it. The
  // pointer compare IS the full condition -- robots that stepped get a
  // fresh handle from the engine, so stale content can never be retained.
  // Skipped wholesale when the run's views never read exchanged states;
  // a stale list kept across skipped rounds can never leak, because reuse
  // always re-compares member handles against the current `states`.
  if (node_states_.size() != n) node_states_.assign(n, nullptr);
  if (!build_state_lists) return;
  for (NodeId v = 0; v < n; ++v) {
    if (index_.empty(v)) {
      node_states_[v] = nullptr;
      continue;
    }
    const RobotId* here = index_.begin(v);
    const std::size_t count = index_.count(v);
    const auto& old = node_states_[v];
    bool reusable = old != nullptr && old->size() == count;
    if (reusable) {
      for (std::size_t i = 0; i < count; ++i) {
        if ((*old)[i] != states[here[i] - 1]) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      ++counters_.node_state_lists_reused;
      continue;
    }
    auto list = std::make_shared<std::vector<StateHandle>>();
    list->reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      list->push_back(states[here[i] - 1]);
    node_states_[v] = std::move(list);
  }
}

void RoundContext::assemble_packets(const Graph& g, const Configuration& conf,
                                    bool with_neighborhood,
                                    const ByzantineModel* byzantine,
                                    ThreadPool* pool) {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  auto assembled =
      make_all_packets_metered(g, conf, with_neighborhood, index_,
                               &packet_bits_, pool, &packet_bits_each_,
                               &packet_nodes_);
  if (byzantine) {
    byzantine->tamper(assembled);
    // Tampered packets no longer match their metered sizes; drop the
    // per-packet arrays so no delta round ever sources from them.
    packet_bits_each_.clear();
    packet_nodes_.clear();
  }
  packets_ =
      std::make_shared<const std::vector<InfoPacket>>(std::move(assembled));
}

void RoundContext::reuse_packets() {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  assert(prev_packets_ && prev_packet_nodes_.size() == prev_packets_->size() &&
         "reuse requires an untampered previous broadcast");
  packets_ = prev_packets_;
  packet_bits_each_ = prev_packet_bits_each_;
  packet_nodes_ = prev_packet_nodes_;
  packet_bits_ = prev_packet_bits_;
}

void RoundContext::delta_packets(const Graph& g, const Configuration& conf,
                                 bool with_neighborhood,
                                 const std::vector<NodeId>& dirty_nodes,
                                 ThreadPool* pool) {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  assert(prev_packets_ && prev_packet_nodes_.size() == prev_packets_->size() &&
         "delta assembly requires an untampered previous broadcast");
  const std::size_t n = conf.node_count();
  const std::size_t k = conf.robot_count();

  // node -> previous-broadcast packet index; -2 marks dirty nodes (rebuild
  // even if a previous packet exists), -1 nodes with no usable source.
  node_to_prev_.assign(n, -1);
  for (std::size_t i = 0; i < prev_packet_nodes_.size(); ++i)
    node_to_prev_[prev_packet_nodes_[i]] = static_cast<std::int32_t>(i);
  for (const NodeId v : dirty_nodes) {
    assert(v < n);
    node_to_prev_[v] = -2;
  }

  std::vector<NodeId> nodes;
  nodes.reserve(conf.occupied_count());
  for (NodeId v = 0; v < n; ++v)
    if (!index_.empty(v)) nodes.push_back(v);

  std::vector<InfoPacket> assembled(nodes.size());
  std::vector<std::size_t> bits(nodes.size());
  parallel_for(pool, nodes.size(), [&](std::size_t i) {
    const NodeId v = nodes[i];
    const std::int32_t pi = node_to_prev_[v];
    if (pi >= 0) {
      // Clean sender with a previous packet: the packet is a pure function
      // of the (unchanged) occupancy and adjacency around v -- copy it and
      // its metered size verbatim.
      assembled[i] = (*prev_packets_)[static_cast<std::size_t>(pi)];
      bits[i] = prev_packet_bits_each_[static_cast<std::size_t>(pi)];
    } else {
      assembled[i] = make_packet(g, conf, v, with_neighborhood, index_);
      bits[i] = packet_bit_size(assembled[i], k, n);
    }
  });
  for (const NodeId v : nodes) {
    if (node_to_prev_[v] >= 0)
      ++counters_.packets_copied;
    else
      ++counters_.packets_rebuilt;
  }
  publish_sorted(std::move(assembled), std::move(bits), std::move(nodes));
}

void RoundContext::publish_sorted(std::vector<InfoPacket> assembled,
                                  std::vector<std::size_t> bits,
                                  std::vector<NodeId> nodes) {
  // Same canonical order as make_all_packets_metered: sender-ID ascending
  // (senders are unique), permuting the aligned arrays identically.
  std::vector<std::size_t> order(assembled.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return assembled[a].sender < assembled[b].sender;
  });

  std::vector<InfoPacket> sorted(assembled.size());
  packet_bits_each_.resize(assembled.size());
  packet_nodes_.resize(assembled.size());
  packet_bits_ = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = std::move(assembled[order[i]]);
    packet_bits_each_[i] = bits[order[i]];
    packet_nodes_[i] = nodes[order[i]];
    packet_bits_ += packet_bits_each_[i];
  }
  packets_ = std::make_shared<const std::vector<InfoPacket>>(std::move(sorted));
}

std::shared_ptr<const std::vector<InfoPacket>>
RoundContext::assemble_candidate_packets(const Graph& g,
                                         const Configuration& conf,
                                         bool with_neighborhood,
                                         const ByzantineModel* byzantine,
                                         ThreadPool* pool) const {
  auto assembled = make_all_packets_metered(g, conf, with_neighborhood,
                                            index_, nullptr, pool);
  if (byzantine) byzantine->tamper(assembled);
  return std::make_shared<const std::vector<InfoPacket>>(std::move(assembled));
}

}  // namespace dyndisp
