#include "sim/round_context.h"

#include <cassert>
#include <utility>

#include "util/parallel.h"

namespace dyndisp {

RoundContext::RoundContext(const Configuration& conf,
                           const std::vector<StateHandle>& states)
    : index_(robots_by_node(conf)), node_states_(conf.node_count()) {
  assert(states.size() == conf.robot_count());
  for (NodeId v = 0; v < conf.node_count(); ++v) {
    const std::vector<RobotId>& here = index_[v];
    if (here.empty()) continue;
    auto list = std::make_shared<std::vector<StateHandle>>();
    list->reserve(here.size());
    for (const RobotId id : here) list->push_back(states[id - 1]);
    node_states_[v] = std::move(list);
  }
}

void RoundContext::assemble_packets(const Graph& g, const Configuration& conf,
                                    bool with_neighborhood,
                                    const ByzantineModel* byzantine,
                                    ThreadPool* pool) {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  auto assembled = make_all_packets_metered(g, conf, with_neighborhood,
                                            index_, &packet_bits_, pool);
  if (byzantine) byzantine->tamper(assembled);
  packets_ =
      std::make_shared<const std::vector<InfoPacket>>(std::move(assembled));
}

std::shared_ptr<const std::vector<InfoPacket>>
RoundContext::assemble_candidate_packets(const Graph& g,
                                         const Configuration& conf,
                                         bool with_neighborhood,
                                         const ByzantineModel* byzantine,
                                         ThreadPool* pool) const {
  auto assembled = make_all_packets_metered(g, conf, with_neighborhood,
                                            index_, nullptr, pool);
  if (byzantine) byzantine->tamper(assembled);
  return std::make_shared<const std::vector<InfoPacket>>(std::move(assembled));
}

}  // namespace dyndisp
