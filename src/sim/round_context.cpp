#include "sim/round_context.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "graph/fingerprint.h"
#include "util/parallel.h"

namespace dyndisp {

DYNDISP_HOT
void RoundContext::begin_round(const Configuration& conf,
                               const std::vector<StateHandle>& states,
                               bool build_state_lists) {
  assert(states.size() == conf.robot_count());
  const std::size_t n = conf.node_count();

  // Retire the finished round's broadcast into the delta-assembly source.
  prev_packets_ = std::move(packets_);
  packets_.reset();
  prev_packet_bits_each_.swap(packet_bits_each_);
  prev_packet_nodes_.swap(packet_nodes_);
  prev_packet_bits_ = packet_bits_;
  packet_bits_each_.clear();
  packet_nodes_.clear();
  packet_bits_ = 0;

  // Rebuild the node index into the retained CSR double buffer: a counting
  // sort into two flat arrays whose capacity persists across rounds, so
  // steady-state rounds allocate nothing here.
  std::swap(prev_index_, index_);
  if (index_.node_count() == n) ++counters_.scratch_reuses;
  index_.build(conf);
  conf_digest_ = 0;
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    conf_digest_ ^= fp_mix((static_cast<std::uint64_t>(id) << 32) |
                           conf.position(id));
  }

  // Diff occupancy against the previous round. A node-count change (never
  // happens mid-run under one adversary, but contexts are reusable) voids
  // the comparison basis and the retired broadcast with it.
  changed_nodes_.clear();
  if (first_round_ || prev_index_.node_count() != n) {
    for (NodeId v = 0; v < n; ++v)
      if (!index_.empty(v)) changed_nodes_.push_back(v);
    occupancy_changed_ = true;
    prev_packets_.reset();
  } else {
    for (NodeId v = 0; v < n; ++v) {
      if (index_.count(v) != prev_index_.count(v) ||
          !std::equal(index_.begin(v), index_.end(v), prev_index_.begin(v)))
        changed_nodes_.push_back(v);
    }
    occupancy_changed_ = !changed_nodes_.empty();
  }
  first_round_ = false;

  // Per-node state lists. A node keeps last round's list handle exactly
  // when the list it needs now is the list it already holds: same robots,
  // and every member's state handle still the one serialized for it. The
  // pointer compare IS the full condition -- robots that stepped get a
  // fresh handle from the engine, so stale content can never be retained.
  // Skipped wholesale when the run's views never read exchanged states;
  // a stale list kept across skipped rounds can never leak, because reuse
  // always re-compares member handles against the current `states`.
  if (node_states_.size() != n) node_states_.assign(n, nullptr);
  if (!build_state_lists) return;
  for (NodeId v = 0; v < n; ++v) {
    if (index_.empty(v)) {
      node_states_[v] = nullptr;
      continue;
    }
    const RobotId* here = index_.begin(v);
    const std::size_t count = index_.count(v);
    const auto& old = node_states_[v];
    bool reusable = old != nullptr && old->size() == count;
    if (reusable) {
      for (std::size_t i = 0; i < count; ++i) {
        if ((*old)[i] != states[here[i] - 1]) {
          reusable = false;
          break;
        }
      }
    }
    if (reusable) {
      ++counters_.node_state_lists_reused;
      continue;
    }
    // NOLINTNEXTLINE-dyndisp(hotpath-alloc): state lists are rebuilt only
    // for nodes whose occupancy changed; unchanged nodes keep their list
    // by handle (node_state_lists_reused counts the reuses).
    auto list = std::make_shared<std::vector<StateHandle>>();
    list->reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      // NOLINTNEXTLINE-dyndisp(hotpath-alloc): fills the freshly allocated
      // list above -- same changed-node slow path, reserved to exact size.
      list->push_back(states[here[i] - 1]);
    node_states_[v] = std::move(list);
  }
}

std::shared_ptr<PacketArena> RoundContext::acquire_arena() {
  for (const std::shared_ptr<PacketArena>& a : arena_pool_) {
    if (a.use_count() == 1) {
      a->clear();
      ++counters_.scratch_reuses;
      return a;
    }
  }
  // All pooled buffers are pinned elsewhere (views, cache entries); a fresh
  // buffer joins the pool up to the cap, beyond which it lives and dies with
  // its broadcast.
  constexpr std::size_t kArenaPoolCap = 8;
  // NOLINTNEXTLINE-dyndisp(hotpath-alloc): pool-miss path only; a warmed-up
  // run cycles pooled buffers (scratch_reuses counts the steady state).
  auto fresh = std::make_shared<PacketArena>();
  if (arena_pool_.size() < kArenaPoolCap) arena_pool_.push_back(fresh);
  return fresh;
}

DYNDISP_HOT
void RoundContext::assemble_packets(const Graph& g, const Configuration& conf,
                                    bool with_neighborhood,
                                    const ByzantineModel* byzantine,
                                    ThreadPool* pool) {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  if (flat_) {
    std::shared_ptr<PacketArena> arena = acquire_arena();
    assemble_arena_metered(*arena, g, conf, with_neighborhood, index_,
                           &packet_bits_, pool, &packet_bits_each_,
                           &packet_nodes_);
    if (byzantine) {
      byzantine->tamper(*arena);
      // Tampered packets no longer match their metered sizes; drop the
      // per-packet arrays so no delta round ever sources from them.
      packet_bits_each_.clear();
      packet_nodes_.clear();
    }
    packets_ = PacketSet::ArenaHandle(std::move(arena));
    return;
  }
  auto assembled =
      make_all_packets_metered(g, conf, with_neighborhood, index_,
                               &packet_bits_, pool, &packet_bits_each_,
                               &packet_nodes_);
  if (byzantine) {
    byzantine->tamper(assembled);
    packet_bits_each_.clear();
    packet_nodes_.clear();
  }
  packets_ =
      // NOLINTNEXTLINE-dyndisp(hotpath-alloc): legacy-backend publication
      // (flat_packets off); the flat path republishes pooled arenas.
      std::make_shared<const std::vector<InfoPacket>>(std::move(assembled));
}

DYNDISP_HOT void RoundContext::reuse_packets() {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  assert(prev_packets_ && prev_packet_nodes_.size() == prev_packets_.size() &&
         "reuse requires an untampered previous broadcast");
  packets_ = prev_packets_;
  packet_bits_each_ = prev_packet_bits_each_;
  packet_nodes_ = prev_packet_nodes_;
  packet_bits_ = prev_packet_bits_;
}

DYNDISP_HOT
void RoundContext::delta_packets(const Graph& g, const Configuration& conf,
                                 bool with_neighborhood,
                                 const std::vector<NodeId>& dirty_nodes,
                                 ThreadPool* pool) {
  assert(!packets_ && "the round's broadcast is assembled exactly once");
  assert(prev_packets_ && prev_packet_nodes_.size() == prev_packets_.size() &&
         "delta assembly requires an untampered previous broadcast");
  const std::size_t n = conf.node_count();
  const std::size_t k = conf.robot_count();

  // node -> previous-broadcast packet index; -2 marks dirty nodes (rebuild
  // even if a previous packet exists), -1 nodes with no usable source.
  node_to_prev_.assign(n, -1);
  for (std::size_t i = 0; i < prev_packet_nodes_.size(); ++i)
    node_to_prev_[prev_packet_nodes_[i]] = static_cast<std::int32_t>(i);
  for (const NodeId v : dirty_nodes) {
    assert(v < n);
    node_to_prev_[v] = -2;
  }

  if (flat_) {
    delta_flat(g, conf, with_neighborhood, pool);
    return;
  }

  std::vector<NodeId> nodes;
  nodes.reserve(conf.occupied_count());
  for (NodeId v = 0; v < n; ++v)
    // NOLINTNEXTLINE-dyndisp(hotpath-alloc): legacy delta branch scratch
    // (flat_packets off); delta_flat below runs on retained buffers.
    if (!index_.empty(v)) nodes.push_back(v);

  const std::vector<InfoPacket>& prev_vec = *prev_packets_.legacy_vec();
  std::vector<InfoPacket> assembled(nodes.size());
  std::vector<std::size_t> bits(nodes.size());
  parallel_for(pool, nodes.size(), [&](std::size_t i) {
    const NodeId v = nodes[i];
    const std::int32_t pi = node_to_prev_[v];
    if (pi >= 0) {
      // Clean sender with a previous packet: the packet is a pure function
      // of the (unchanged) occupancy and adjacency around v -- copy it and
      // its metered size verbatim.
      assembled[i] = prev_vec[static_cast<std::size_t>(pi)];
      bits[i] = prev_packet_bits_each_[static_cast<std::size_t>(pi)];
    } else {
      assembled[i] = make_packet(g, conf, v, with_neighborhood, index_);
      bits[i] = packet_bit_size(assembled[i], k, n);
    }
  });
  for (const NodeId v : nodes) {
    if (node_to_prev_[v] >= 0)
      ++counters_.packets_copied;
    else
      ++counters_.packets_rebuilt;
  }
  publish_sorted(std::move(assembled), std::move(bits), std::move(nodes));
}

DYNDISP_HOT
void RoundContext::delta_flat(const Graph& g, const Configuration& conf,
                              bool with_neighborhood, ThreadPool* pool) {
  assert(prev_packets_.flat() && "flat deltas source from a flat broadcast");
  const PacketArena& prev = *prev_packets_.arena_handle();
  const std::size_t n = conf.node_count();
  const std::size_t k = conf.robot_count();

  // A previous packet's pool slice is contiguous (sender robots, then each
  // neighbor's robots in port order), so its length is the distance from
  // its first robot to the end of its last neighbor's range.
  const auto slice_len = [&prev](const ArenaPacket& h) -> std::uint32_t {
    if (h.nb_count == 0) return h.robots_count;
    const ArenaNeighbor& last = prev.neighbors[h.nb_begin + h.nb_count - 1];
    return last.robots_begin + last.robots_count - h.robots_begin;
  };

  std::shared_ptr<PacketArena> arena_ptr = acquire_arena();
  PacketArena& arena = *arena_ptr;

  // Pass 1 (serial, node-ascending): size every packet -- clean senders
  // straight off the previous header, dirty ones off the index and graph --
  // assigning every range cumulatively, exactly like the full assembly.
  std::uint32_t pool_cursor = 0;
  std::uint32_t nb_cursor = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t here = index_.count(v);
    if (here == 0) continue;
    const std::int32_t pi = node_to_prev_[v];
    ArenaPacket h;
    h.robots_begin = pool_cursor;
    h.nb_begin = nb_cursor;
    if (pi >= 0) {
      const ArenaPacket& ph = prev.headers[static_cast<std::size_t>(pi)];
      h.sender = ph.sender;
      h.count = ph.count;
      h.degree = ph.degree;
      h.robots_count = ph.robots_count;
      h.nb_count = ph.nb_count;
      pool_cursor += slice_len(ph);
    } else {
      h.sender = *index_.begin(v);
      h.count = static_cast<std::uint32_t>(here);
      h.degree = static_cast<std::uint32_t>(g.degree(v));
      h.robots_count = h.count;
      pool_cursor += h.robots_count;
      h.nb_count = 0;
      if (with_neighborhood) {
        for (Port p = 1; p <= g.degree(v); ++p) {
          const std::size_t there = index_.count(g.neighbor(v, p));
          if (there == 0) continue;
          ++h.nb_count;
          pool_cursor += static_cast<std::uint32_t>(there);
        }
      }
    }
    nb_cursor += h.nb_count;
    // NOLINTNEXTLINE-dyndisp(hotpath-alloc): retained header table of a
    // pooled arena -- capacity is reached during warm-up, after which the
    // refill is in place (the zero-alloc memprobe test pins this).
    arena.headers.push_back(h);
  }
  arena.neighbors.resize(nb_cursor);
  arena.pool.resize(pool_cursor);

  // Canonical sender order before the fill, as in the full assembly:
  // explicit ranges mean sorting headers moves no payload.
  std::sort(arena.headers.begin(), arena.headers.end(),
            [](const ArenaPacket& a, const ArenaPacket& b) {
              return a.sender < b.sender;
            });

  // Pass 2 (parallel): clean packets copy their pool slice in one shot and
  // their neighbor entries with rebased ranges (every range in one slice
  // shifts by the same offset); dirty packets fill and meter from scratch.
  packet_bits_each_.resize(arena.headers.size());
  packet_nodes_.resize(arena.headers.size());
  parallel_for(pool, arena.headers.size(), [&](std::size_t i) {
    const ArenaPacket& h = arena.headers[i];
    const NodeId v = conf.position(h.sender);
    packet_nodes_[i] = v;
    const std::int32_t pi = node_to_prev_[v];
    if (pi >= 0) {
      const ArenaPacket& ph = prev.headers[static_cast<std::size_t>(pi)];
      const std::uint32_t len = slice_len(ph);
      std::copy(prev.pool.begin() + ph.robots_begin,
                prev.pool.begin() + ph.robots_begin + len,
                arena.pool.begin() + h.robots_begin);
      const std::uint32_t shift = h.robots_begin - ph.robots_begin;
      for (std::uint32_t e = 0; e < ph.nb_count; ++e) {
        ArenaNeighbor nb = prev.neighbors[ph.nb_begin + e];
        nb.robots_begin += shift;  // uint32 wraparound-safe: exact inverse
        arena.neighbors[h.nb_begin + e] = nb;
      }
      packet_bits_each_[i] = prev_packet_bits_each_[static_cast<std::size_t>(pi)];
    } else {
      std::copy(index_.begin(v), index_.end(v),
                arena.pool.begin() + h.robots_begin);
      std::uint32_t cursor = h.robots_begin + h.robots_count;
      std::uint32_t filled = 0;
      if (h.nb_count > 0) {
        for (Port p = 1; p <= g.degree(v); ++p) {
          const NodeId w = g.neighbor(v, p);
          if (index_.empty(w)) continue;
          ArenaNeighbor& nb = arena.neighbors[h.nb_begin + filled++];
          nb.port = p;
          nb.min_robot = *index_.begin(w);
          nb.count = static_cast<std::uint32_t>(index_.count(w));
          nb.robots_begin = cursor;
          nb.robots_count = nb.count;
          std::copy(index_.begin(w), index_.end(w),
                    arena.pool.begin() + cursor);
          cursor += nb.count;
        }
      }
      packet_bits_each_[i] = packet_bit_size(PacketView(arena, i), k, n);
    }
  });

  packet_bits_ = 0;
  for (std::size_t i = 0; i < arena.headers.size(); ++i) {
    packet_bits_ += packet_bits_each_[i];
    if (node_to_prev_[packet_nodes_[i]] >= 0)
      ++counters_.packets_copied;
    else
      ++counters_.packets_rebuilt;
  }
  packets_ = PacketSet::ArenaHandle(std::move(arena_ptr));
}

DYNDISP_COLD
void RoundContext::publish_sorted(std::vector<InfoPacket> assembled,
                                  std::vector<std::size_t> bits,
                                  std::vector<NodeId> nodes) {
  // Same canonical order as make_all_packets_metered: sender-ID ascending
  // (senders are unique), permuting the aligned arrays identically.
  std::vector<std::size_t> order(assembled.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return assembled[a].sender < assembled[b].sender;
  });

  std::vector<InfoPacket> sorted(assembled.size());
  packet_bits_each_.resize(assembled.size());
  packet_nodes_.resize(assembled.size());
  packet_bits_ = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = std::move(assembled[order[i]]);
    packet_bits_each_[i] = bits[order[i]];
    packet_nodes_[i] = nodes[order[i]];
    packet_bits_ += packet_bits_each_[i];
  }
  packets_ = std::make_shared<const std::vector<InfoPacket>>(std::move(sorted));
}

PacketSet RoundContext::assemble_candidate_packets(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const ByzantineModel* byzantine, ThreadPool* pool) const {
  auto assembled = make_all_packets_metered(g, conf, with_neighborhood,
                                            index_, nullptr, pool);
  if (byzantine) byzantine->tamper(assembled);
  return PacketSet::LegacyHandle(
      std::make_shared<const std::vector<InfoPacket>>(std::move(assembled)));
}

}  // namespace dyndisp
