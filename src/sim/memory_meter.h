// Persistent-memory metering (Lemma 8 / Theorem 4 audit).
//
// After every round the engine meters each alive robot's persistent state;
// the meter tracks the maximum bit count over robots and rounds. The bit
// counts come from the engine's once-per-round state serialization (the
// same bytes co-located robots exchange), so metering adds no serialization
// work of its own.
#pragma once

#include <cstddef>

namespace dyndisp {

class MemoryMeter {
 public:
  /// Meters one robot's already-serialized state size at the end of a round.
  void record_bits(std::size_t bits) {
    if (bits > max_bits_) max_bits_ = bits;
    ++samples_;
  }

  /// Maximum bits observed across all robots and rounds.
  std::size_t max_bits() const { return max_bits_; }

  /// Number of measurements taken.
  std::size_t samples() const { return samples_; }

 private:
  std::size_t max_bits_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace dyndisp
