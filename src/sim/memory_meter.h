// Persistent-memory metering (Lemma 8 / Theorem 4 audit).
//
// After every round the engine serializes each alive robot's persistent
// state; the meter tracks the maximum bit count over robots and rounds.
#pragma once

#include <cstddef>

#include "sim/algorithm.h"

namespace dyndisp {

class MemoryMeter {
 public:
  /// Meters one robot's state at the end of a round.
  void record(const RobotAlgorithm& algo);

  /// Maximum bits observed across all robots and rounds.
  std::size_t max_bits() const { return max_bits_; }

  /// Number of measurements taken.
  std::size_t samples() const { return samples_; }

 private:
  std::size_t max_bits_ = 0;
  std::size_t samples_ = 0;
};

}  // namespace dyndisp
