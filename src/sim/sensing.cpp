#include "sim/sensing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

#include "util/bits.h"
#include "util/parallel.h"

namespace dyndisp {

namespace {
std::atomic<std::size_t> g_packet_assemblies{0};
}  // namespace

std::size_t packet_assembly_count() {
  return g_packet_assemblies.load(std::memory_order_relaxed);
}

NodeRobots robots_by_node(const Configuration& conf) {
  NodeRobots index(conf.node_count());
  for (RobotId id = 1; id <= conf.robot_count(); ++id)
    if (conf.alive(id)) index[conf.position(id)].push_back(id);
  return index;
}

InfoPacket make_packet(const Graph& g, const Configuration& conf, NodeId v,
                       bool with_neighborhood, const NodeRobots* index) {
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  InfoPacket pkt;
  pkt.robots = (*index)[v];
  assert(!pkt.robots.empty() && "packets originate from occupied nodes only");
  pkt.sender = pkt.robots.front();
  pkt.count = pkt.robots.size();
  pkt.degree = g.degree(v);
  if (with_neighborhood) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const NodeId w = g.neighbor(v, p);
      const auto& robots_w = (*index)[w];
      if (robots_w.empty()) continue;
      NeighborInfo info;
      info.port = p;
      info.min_robot = robots_w.front();
      info.count = robots_w.size();
      info.robots = robots_w;
      pkt.occupied_neighbors.push_back(std::move(info));
    }
  }
  return pkt;
}

std::vector<InfoPacket> make_all_packets(const Graph& g,
                                         const Configuration& conf,
                                         bool with_neighborhood,
                                         const NodeRobots* index) {
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  return make_all_packets_metered(g, conf, with_neighborhood, *index,
                                  nullptr, nullptr);
}

std::vector<InfoPacket> make_all_packets_metered(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const NodeRobots& index, std::size_t* wire_bits, ThreadPool* pool,
    std::vector<std::size_t>* bits_each, std::vector<NodeId>* nodes_each) {
  g_packet_assemblies.fetch_add(1, std::memory_order_relaxed);
  std::vector<NodeId> senders;
  senders.reserve(conf.occupied_count());
  for (NodeId v = 0; v < conf.node_count(); ++v)
    if (!index[v].empty()) senders.push_back(v);

  const bool meter = wire_bits != nullptr || bits_each != nullptr;
  std::vector<InfoPacket> packets(senders.size());
  std::vector<std::size_t> bits(meter ? senders.size() : 0);
  const std::size_t k = conf.robot_count();
  const std::size_t n = conf.node_count();
  parallel_for(pool, senders.size(), [&](std::size_t i) {
    packets[i] = make_packet(g, conf, senders[i], with_neighborhood, &index);
    if (meter) bits[i] = packet_bit_size(packets[i], k, n);
  });
  if (wire_bits) {
    std::size_t total = 0;
    for (const std::size_t b : bits) total += b;
    *wire_bits = total;
  }
  // Assembly order is node-ascending; re-sort by sender ID for a canonical
  // order that does not leak node identities. Senders are unique (one packet
  // per node over disjoint robot sets), so the order is deterministic. The
  // optional per-packet ledgers are permuted identically so they stay
  // aligned to the published order.
  std::vector<std::size_t> order(packets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return packets[a].sender < packets[b].sender;
  });
  std::vector<InfoPacket> sorted(packets.size());
  if (bits_each) bits_each->resize(packets.size());
  if (nodes_each) nodes_each->resize(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = std::move(packets[order[i]]);
    if (bits_each) (*bits_each)[i] = bits[order[i]];
    if (nodes_each) (*nodes_each)[i] = senders[order[i]];
  }
  return sorted;
}

std::size_t packet_bit_size(const InfoPacket& packet, std::size_t k,
                            std::size_t n) {
  const std::size_t id_bits = bit_width_for(k + 1);
  const std::size_t port_bits = bit_width_for(n);
  std::size_t bits = id_bits;              // sender
  bits += id_bits;                         // count
  bits += port_bits;                       // degree
  bits += packet.robots.size() * id_bits;  // co-located IDs
  for (const NeighborInfo& nb : packet.occupied_neighbors) {
    bits += port_bits;                     // port
    bits += id_bits;                       // min_robot
    bits += id_bits;                       // count
    bits += nb.robots.size() * id_bits;    // IDs on the neighbor
  }
  return bits;
}

RobotView make_view(const Graph& g, const Configuration& conf, RobotId id,
                    Round round, CommModel comm, bool neighborhood,
                    std::shared_ptr<const std::vector<InfoPacket>> packets,
                    const NodeRobots* index) {
  assert(conf.alive(id));
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  const NodeId v = conf.position(id);

  RobotView view;
  view.self = id;
  view.round = round;
  view.k = conf.robot_count();
  view.degree = g.degree(v);
  view.colocated = (*index)[v];
  view.node_count = view.colocated.size();

  view.neighborhood_knowledge = neighborhood;
  if (neighborhood) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const NodeId w = g.neighbor(v, p);
      const auto& robots_w = (*index)[w];
      if (robots_w.empty()) {
        view.empty_ports.push_back(p);
        continue;
      }
      NeighborInfo info;
      info.port = p;
      info.robots = robots_w;
      info.min_robot = info.robots.front();
      info.count = info.robots.size();
      view.occupied_neighbors.push_back(std::move(info));
    }
    view.empty_neighbor_count = view.empty_ports.size();
  }

  view.global_comm = comm == CommModel::kGlobal;
  if (view.global_comm) view.shared_packets = std::move(packets);
  return view;
}

}  // namespace dyndisp
