#include "sim/sensing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>

#include "util/bits.h"
#include "util/contract.h"
#include "util/parallel.h"

namespace dyndisp {

namespace {
std::atomic<std::size_t> g_packet_assemblies{0};

/// Contiguous read-only segment of robot IDs (one node's occupants).
struct RobotSpan {
  const RobotId* data = nullptr;
  std::size_t size = 0;
  bool empty() const { return size == 0; }
  const RobotId* begin() const { return data; }
  const RobotId* end() const { return data + size; }
  RobotId front() const { return data[0]; }
};

/// Uniform accessors over the two index representations, so packet and view
/// assembly are written once and produce identical output on both.
struct VecIndex {
  const NodeRobots* idx;
  RobotSpan at(NodeId v) const {
    const std::vector<RobotId>& r = (*idx)[v];
    return {r.data(), r.size()};
  }
};

struct CsrIndex {
  const NodeIndex* idx;
  RobotSpan at(NodeId v) const { return {idx->begin(v), idx->count(v)}; }
};

template <class Index>
DYNDISP_COLD
InfoPacket make_packet_impl(const Graph& g, NodeId v, bool with_neighborhood,
                            Index index) {
  InfoPacket pkt;
  const RobotSpan here = index.at(v);
  assert(!here.empty() && "packets originate from occupied nodes only");
  pkt.robots.assign(here.begin(), here.end());
  pkt.sender = here.front();
  pkt.count = here.size;
  pkt.degree = g.degree(v);
  if (with_neighborhood) {
    // Count first so the list is allocated exactly once.
    std::size_t occupied = 0;
    for (Port p = 1; p <= g.degree(v); ++p)
      if (!index.at(g.neighbor(v, p)).empty()) ++occupied;
    pkt.occupied_neighbors.reserve(occupied);
    for (Port p = 1; p <= g.degree(v); ++p) {
      const RobotSpan robots_w = index.at(g.neighbor(v, p));
      if (robots_w.empty()) continue;
      NeighborInfo info;
      info.port = p;
      info.min_robot = robots_w.front();
      info.count = robots_w.size;
      info.robots.assign(robots_w.begin(), robots_w.end());
      pkt.occupied_neighbors.push_back(std::move(info));
    }
  }
  return pkt;
}

template <class Index>
DYNDISP_COLD
std::vector<InfoPacket> make_all_packets_metered_impl(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    Index index, std::size_t* wire_bits, ThreadPool* pool,
    std::vector<std::size_t>* bits_each, std::vector<NodeId>* nodes_each) {
  g_packet_assemblies.fetch_add(1, std::memory_order_relaxed);
  std::vector<NodeId> senders;
  senders.reserve(conf.occupied_count());
  for (NodeId v = 0; v < conf.node_count(); ++v)
    if (!index.at(v).empty()) senders.push_back(v);

  const bool meter = wire_bits != nullptr || bits_each != nullptr;
  std::vector<InfoPacket> packets(senders.size());
  std::vector<std::size_t> bits(meter ? senders.size() : 0);
  const std::size_t k = conf.robot_count();
  const std::size_t n = conf.node_count();
  parallel_for(pool, senders.size(), [&](std::size_t i) {
    packets[i] = make_packet_impl(g, senders[i], with_neighborhood, index);
    if (meter) bits[i] = packet_bit_size(packets[i], k, n);
  });
  if (wire_bits) {
    std::size_t total = 0;
    for (const std::size_t b : bits) total += b;
    *wire_bits = total;
  }
  // Assembly order is node-ascending; re-sort by sender ID for a canonical
  // order that does not leak node identities. Senders are unique (one packet
  // per node over disjoint robot sets), so the order is deterministic. The
  // optional per-packet ledgers are permuted identically so they stay
  // aligned to the published order.
  std::vector<std::size_t> order(packets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return packets[a].sender < packets[b].sender;
  });
  std::vector<InfoPacket> sorted(packets.size());
  if (bits_each) bits_each->resize(packets.size());
  if (nodes_each) nodes_each->resize(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = std::move(packets[order[i]]);
    if (bits_each) (*bits_each)[i] = bits[order[i]];
    if (nodes_each) (*nodes_each)[i] = senders[order[i]];
  }
  return sorted;
}

template <class Index>
void fill_view_impl(RobotView& out, const Graph& g, const Configuration& conf,
                    RobotId id, Round round, CommModel comm, bool neighborhood,
                    const PacketSet& packets, Index index,
                    const ViewNeeds& needs) {
  assert(conf.alive(id));
  const NodeId v = conf.position(id);

  out.self = id;
  out.round = round;
  out.k = conf.robot_count();
  out.degree = g.degree(v);
  out.node_count = conf.count_at(v);
  out.colocated.clear();
  if (needs.colocated) {
    const RobotSpan here = index.at(v);
    out.colocated.assign(here.begin(), here.end());
  }
  // Engine-owned fields: reset exactly as a fresh make_view result.
  out.arrival_port = kInvalidPort;
  out.colocated_states = nullptr;
  out.reuse = ReuseHints{};

  out.neighborhood_knowledge = neighborhood;
  out.empty_ports.clear();
  out.empty_neighbor_count = 0;
  std::size_t neighbors_filled = 0;
  if (neighborhood) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const RobotSpan robots_w = index.at(g.neighbor(v, p));
      if (robots_w.empty()) {
        ++out.empty_neighbor_count;
        // NOLINTNEXTLINE-dyndisp(hotpath-alloc): persistent view-arena slot
        // refilled in place; capacity is steady once warmed up.
        if (needs.empty_ports) out.empty_ports.push_back(p);
        continue;
      }
      if (!needs.occupied_neighbors) continue;
      // Reuse the slot (and its robots capacity) left from a prior fill.
      if (neighbors_filled == out.occupied_neighbors.size())
        // NOLINTNEXTLINE-dyndisp(hotpath-alloc): persistent view-arena slot
        // growth only while warming up; refilled in place afterwards.
        out.occupied_neighbors.emplace_back();
      NeighborInfo& info = out.occupied_neighbors[neighbors_filled++];
      info.port = p;
      info.min_robot = robots_w.front();
      info.count = robots_w.size;
      info.robots.assign(robots_w.begin(), robots_w.end());
    }
  }
  if (out.occupied_neighbors.size() > neighbors_filled)
    out.occupied_neighbors.resize(neighbors_filled);

  out.global_comm = comm == CommModel::kGlobal;
  out.shared_packets = out.global_comm ? packets : PacketSet{};
}

}  // namespace

std::size_t packet_assembly_count() {
  return g_packet_assemblies.load(std::memory_order_relaxed);
}

DYNDISP_COLD
NodeRobots robots_by_node(const Configuration& conf) {
  NodeRobots index(conf.node_count());
  for (RobotId id = 1; id <= conf.robot_count(); ++id)
    if (conf.alive(id)) index[conf.position(id)].push_back(id);
  return index;
}

DYNDISP_HOT
void NodeIndex::build(const Configuration& conf) {
  const std::size_t n = conf.node_count();
  const std::size_t k = conf.robot_count();
  offsets_.assign(n + 1, 0);
  for (RobotId id = 1; id <= k; ++id)
    if (conf.alive(id)) ++offsets_[conf.position(id) + 1];
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];
  ids_.resize(offsets_[n]);
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (RobotId id = 1; id <= k; ++id)
    if (conf.alive(id)) ids_[cursor_[conf.position(id)]++] = id;
}

InfoPacket make_packet(const Graph& g, const Configuration& conf, NodeId v,
                       bool with_neighborhood, const NodeRobots* index) {
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  (void)conf;
  return make_packet_impl(g, v, with_neighborhood, VecIndex{index});
}

InfoPacket make_packet(const Graph& g, const Configuration& conf, NodeId v,
                       bool with_neighborhood, const NodeIndex& index) {
  (void)conf;
  return make_packet_impl(g, v, with_neighborhood, CsrIndex{&index});
}

std::vector<InfoPacket> make_all_packets(const Graph& g,
                                         const Configuration& conf,
                                         bool with_neighborhood,
                                         const NodeRobots* index) {
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  return make_all_packets_metered(g, conf, with_neighborhood, *index,
                                  nullptr, nullptr);
}

std::vector<InfoPacket> make_all_packets_metered(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const NodeRobots& index, std::size_t* wire_bits, ThreadPool* pool,
    std::vector<std::size_t>* bits_each, std::vector<NodeId>* nodes_each) {
  return make_all_packets_metered_impl(g, conf, with_neighborhood,
                                       VecIndex{&index}, wire_bits, pool,
                                       bits_each, nodes_each);
}

std::vector<InfoPacket> make_all_packets_metered(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const NodeIndex& index, std::size_t* wire_bits, ThreadPool* pool,
    std::vector<std::size_t>* bits_each, std::vector<NodeId>* nodes_each) {
  return make_all_packets_metered_impl(g, conf, with_neighborhood,
                                       CsrIndex{&index}, wire_bits, pool,
                                       bits_each, nodes_each);
}

std::size_t packet_bit_size(const PacketView& packet, std::size_t k,
                            std::size_t n) {
  const std::size_t id_bits = bit_width_for(k + 1);
  const std::size_t port_bits = bit_width_for(n);
  std::size_t bits = id_bits;                // sender
  bits += id_bits;                           // count
  bits += port_bits;                         // degree
  bits += packet.robot_count() * id_bits;    // co-located IDs
  for (std::size_t i = 0, end = packet.neighbor_count(); i < end; ++i) {
    const NeighborView nb = packet.neighbor(i);
    bits += port_bits;                       // port
    bits += id_bits;                         // min_robot
    bits += id_bits;                         // count
    bits += nb.robot_count() * id_bits;      // IDs on the neighbor
  }
  return bits;
}

DYNDISP_HOT
void assemble_arena_metered(PacketArena& arena, const Graph& g,
                            const Configuration& conf, bool with_neighborhood,
                            const NodeIndex& index, std::size_t* wire_bits,
                            ThreadPool* pool,
                            std::vector<std::size_t>* bits_each,
                            std::vector<NodeId>* nodes_each) {
  g_packet_assemblies.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = conf.node_count();
  const std::size_t k = conf.robot_count();

  // Pass 1 (serial): one header per occupied node with every range
  // pre-assigned off the CSR index and the graph alone -- sender robots
  // first, then each occupied neighbor's robots, so a packet's pool slice
  // is contiguous. Node-ascending assignment keeps the layout
  // deterministic at any thread count.
  arena.headers.clear();
  std::uint32_t pool_cursor = 0;
  std::uint32_t nb_cursor = 0;
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t here = index.count(v);
    if (here == 0) continue;
    ArenaPacket h;
    h.sender = *index.begin(v);
    h.count = static_cast<std::uint32_t>(here);
    h.degree = static_cast<std::uint32_t>(g.degree(v));
    h.robots_begin = pool_cursor;
    h.robots_count = h.count;
    pool_cursor += h.robots_count;
    h.nb_begin = nb_cursor;
    h.nb_count = 0;
    if (with_neighborhood) {
      for (Port p = 1; p <= g.degree(v); ++p) {
        const std::size_t there = index.count(g.neighbor(v, p));
        if (there == 0) continue;
        ++h.nb_count;
        pool_cursor += static_cast<std::uint32_t>(there);
      }
    }
    nb_cursor += h.nb_count;
    // NOLINTNEXTLINE-dyndisp(hotpath-alloc): retained header table of a
    // pooled arena -- capacity is reached during warm-up, after which the
    // refill is in place (the zero-alloc memprobe test pins this).
    arena.headers.push_back(h);
  }
  arena.neighbors.resize(nb_cursor);
  arena.pool.resize(pool_cursor);

  // Canonical sender-ascending order, sorted in place: ranges are explicit,
  // so reordering headers never moves the pool, and the parallel fill below
  // is order-independent. Senders are unique (one packet per node over
  // disjoint robot sets), so the order is deterministic.
  std::sort(arena.headers.begin(), arena.headers.end(),
            [](const ArenaPacket& a, const ArenaPacket& b) {
              return a.sender < b.sender;
            });

  // Pass 2 (parallel): fill each packet's slices and meter it. The sender's
  // node is recovered from its smallest robot's position, so no node
  // scratch list is needed.
  const bool meter = wire_bits != nullptr || bits_each != nullptr;
  if (bits_each) bits_each->resize(arena.headers.size());
  if (nodes_each) nodes_each->resize(arena.headers.size());
  std::vector<std::size_t> local_bits(
      meter && bits_each == nullptr ? arena.headers.size() : 0);
  std::vector<std::size_t>* bits = bits_each ? bits_each : &local_bits;
  parallel_for(pool, arena.headers.size(), [&](std::size_t i) {
    const ArenaPacket& h = arena.headers[i];
    const NodeId v = conf.position(h.sender);
    std::copy(index.begin(v), index.end(v),
              arena.pool.begin() + h.robots_begin);
    std::uint32_t cursor = h.robots_begin + h.robots_count;
    std::uint32_t filled = 0;
    if (h.nb_count > 0) {
      for (Port p = 1; p <= g.degree(v); ++p) {
        const NodeId w = g.neighbor(v, p);
        if (index.empty(w)) continue;
        ArenaNeighbor& nb = arena.neighbors[h.nb_begin + filled++];
        nb.port = p;
        nb.min_robot = *index.begin(w);
        nb.count = static_cast<std::uint32_t>(index.count(w));
        nb.robots_begin = cursor;
        nb.robots_count = nb.count;
        std::copy(index.begin(w), index.end(w),
                  arena.pool.begin() + cursor);
        cursor += nb.count;
      }
    }
    if (meter) (*bits)[i] = packet_bit_size(PacketView(arena, i), k, n);
    if (nodes_each) (*nodes_each)[i] = v;
  });
  if (wire_bits) {
    std::size_t total = 0;
    for (const std::size_t b : *bits) total += b;
    *wire_bits = total;
  }
}

RobotView make_view(const Graph& g, const Configuration& conf, RobotId id,
                    Round round, CommModel comm, bool neighborhood,
                    PacketSet packets, const NodeRobots* index) {
  NodeRobots local;
  if (index == nullptr) {
    local = robots_by_node(conf);
    index = &local;
  }
  RobotView view;
  fill_view_impl(view, g, conf, id, round, comm, neighborhood, packets,
                 VecIndex{index}, ViewNeeds{});
  return view;
}

RobotView make_view(const Graph& g, const Configuration& conf, RobotId id,
                    Round round, CommModel comm, bool neighborhood,
                    PacketSet packets, const NodeIndex& index) {
  RobotView view;
  fill_view_impl(view, g, conf, id, round, comm, neighborhood, packets,
                 CsrIndex{&index}, ViewNeeds{});
  return view;
}

DYNDISP_HOT
void fill_view(RobotView& out, const Graph& g, const Configuration& conf,
               RobotId id, Round round, CommModel comm, bool neighborhood,
               const PacketSet& packets, const NodeIndex& index,
               const ViewNeeds& needs) {
  fill_view_impl(out, g, conf, id, round, comm, neighborhood, packets,
                 CsrIndex{&index}, needs);
}

}  // namespace dyndisp
