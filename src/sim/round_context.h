// RoundContext: the per-round shared artifacts, each assembled exactly once
// -- and, across rounds, assembled incrementally where the configuration and
// graph permit.
//
// One CCM round under global communication needs three shared products:
//   * the node -> alive-robots index (robots_by_node),
//   * the per-occupied-node lists of serialized start-of-round states that
//     co-located robots exchange during Communicate, and
//   * the packet broadcast for the round's graph, with its wire-bit size.
// The seed engine rebuilt the index and the broadcast twice per round (once
// to meter bits, once to plan) and deep-copied state bytes into every view;
// RoundContext assembles each exactly once and hands out reference-counted
// handles instead.
//
// Since the delta-aware round loop (see docs/PERFORMANCE.md), one context
// PERSISTS across the whole run: begin_round() rebuilds the index into
// retained buffers (no per-round reallocation), diffs it against the
// previous round to expose which nodes' occupancy changed, keeps unchanged
// nodes' state lists by handle, and lets the engine choose between three
// broadcast paths -- full assembly, handle reuse (identical graph and
// occupancy), or delta assembly (rebuild only the packets whose content can
// have changed, copy the rest from the previous broadcast). Every path
// produces a broadcast bitwise identical to full assembly; the engine's
// packets_sent / packet_bits_sent accounting is identical on all paths.
// Counters (not guesses) report how often each reuse actually fired.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/byzantine.h"
#include "sim/sensing.h"
#include "util/contract.h"

namespace dyndisp {

class ThreadPool;

class RoundContext {
 public:
  /// An empty context; call begin_round before use.
  RoundContext() = default;

  /// Selects the broadcast storage backend (EngineOptions::flat_packets):
  /// true routes every broadcast path into a persistent PacketArena pooled
  /// and refilled across rounds; false keeps the legacy one-vector-per-
  /// round InfoPacket layout. The logical packet records, canonical order,
  /// and wire-bit accounting are identical either way. Call before the
  /// first broadcast path of a run; switching mid-run voids no invariant
  /// (the next broadcast simply lands in the other backend) but is never
  /// done by the engine.
  void set_flat_packets(bool flat) { flat_ = flat; }

  /// One-shot construction (tests / single-round uses): equivalent to
  /// default-constructing and calling begin_round once.
  RoundContext(const Configuration& conf,
               const std::vector<StateHandle>& states) {
    begin_round(conf, states);
  }

  /// Starts a round: rebuilds the node index (into retained buffers), diffs
  /// occupancy against the previous round, refreshes the per-node state
  /// lists (unchanged nodes keep their list handle when every member's
  /// state handle is unchanged), and retires the previous round's broadcast
  /// into the delta-assembly source. `states` holds every robot's
  /// serialized start-of-round state (id-1 indexed; dead robots' entries
  /// are unused) and must outlive the round. `build_state_lists` = false
  /// skips the per-node state-list refresh entirely -- legal only when no
  /// view of the round will read colocated_states (the engine derives this
  /// from the run's aggregated ViewNeeds).
  void begin_round(const Configuration& conf,
                   const std::vector<StateHandle>& states,
                   bool build_state_lists = true);

  const NodeIndex& index() const { return index_; }

  /// The shared state list of node `v` (null for unoccupied nodes), parallel
  /// to index()[v]. Every view assembled on `v` attaches this same handle.
  const std::shared_ptr<const std::vector<StateHandle>>& node_states(
      NodeId v) const {
    return node_states_[v];
  }

  /// True when any node's alive-robot list differs from the previous round
  /// (always true on the first round).
  bool occupancy_changed() const { return occupancy_changed_; }

  /// Nodes whose alive-robot list changed since the previous round,
  /// ascending -- including nodes that became empty.
  const std::vector<NodeId>& changed_nodes() const { return changed_nodes_; }

  /// XOR digest over alive robots of their (id, position) pair, mixed per
  /// robot -- the configuration half of the ReuseHints key.
  std::uint64_t conf_digest() const { return conf_digest_; }

  /// Assembles the packet broadcast for the round's actual graph exactly
  /// once: wire bits are metered during assembly (pre-tamper, matching the
  /// honest-wire-cost metric), then the optional Byzantine model corrupts
  /// the set, and the result is frozen behind the shared handle every view
  /// of the round receives. Call at most one broadcast path per round.
  void assemble_packets(const Graph& g, const Configuration& conf,
                        bool with_neighborhood, const ByzantineModel* byzantine,
                        ThreadPool* pool);

  /// Republishes the previous round's broadcast handle unchanged. Only
  /// legal when the graph and every node's occupancy are unchanged (the
  /// broadcast is a pure function of both) -- the engine checks; tampered
  /// (Byzantine) broadcasts are never republished.
  /// Requires has_prev_packets().
  void reuse_packets();

  /// Delta assembly: packets of senders in `dirty_nodes` (ascending; the
  /// closure of occupancy and adjacency changes) are rebuilt from `g`, all
  /// other packets are copied from the previous broadcast together with
  /// their metered bit sizes. The result -- content, canonical sender
  /// order, and wire-bit total -- is bitwise identical to assemble_packets
  /// on the same inputs without a Byzantine model.
  /// Requires has_prev_packets().
  void delta_packets(const Graph& g, const Configuration& conf,
                     bool with_neighborhood,
                     const std::vector<NodeId>& dirty_nodes, ThreadPool* pool);

  /// True when the previous round produced a broadcast the delta paths can
  /// source from.
  bool has_prev_packets() const { return static_cast<bool>(prev_packets_); }

  /// Builds a broadcast for a candidate graph a trap adversary probes,
  /// without touching the context's own broadcast. Tampering applies (the
  /// adversary predicts what the robots will actually receive). Candidate
  /// sets are always legacy-backed: probes are rare, their content is
  /// identical either way, and keeping them off the arena pool means a
  /// probe can never contend with the round's own refill.
  PacketSet assemble_candidate_packets(const Graph& g,
                                       const Configuration& conf,
                                       bool with_neighborhood,
                                       const ByzantineModel* byzantine,
                                       ThreadPool* pool) const;

  /// The round's broadcast; falsy until a broadcast path ran (or under
  /// local communication, where no packets propagate).
  const PacketSet& packets() const { return packets_; }

  /// Packets in the round's broadcast (== occupied nodes).
  std::size_t packet_count() const { return packets_.size(); }

  /// Total wire bits of the round's broadcast, metered during assembly (or
  /// carried over exactly on the reuse/delta paths).
  std::size_t packet_bits() const { return packet_bits_; }

  /// Reuse effectiveness, counted (cumulative over the context's lifetime).
  /// Observability only (DYNDISP_STATS, see util/contract.h): the
  /// digest-exclusion lint rule keeps these fields out of result digests.
  struct DYNDISP_STATS Counters {
    std::size_t node_state_lists_reused = 0;  ///< Lists kept by handle.
    std::size_t packets_copied = 0;    ///< Packets copied on delta rounds.
    std::size_t packets_rebuilt = 0;   ///< Packets rebuilt on delta rounds.
    std::size_t scratch_reuses = 0;    ///< Round buffers refilled in place.
  };
  const Counters& counters() const { return counters_; }

 private:
  /// Publishes `assembled` (node-ascending, with aligned bits/nodes arrays)
  /// as the round's broadcast in canonical sender order.
  void publish_sorted(std::vector<InfoPacket> assembled,
                      std::vector<std::size_t> bits,
                      std::vector<NodeId> nodes);

  /// An arena free for refilling: a pooled buffer nothing else references
  /// (use_count() == 1 -- a buffer pinned by a view, plan-cache key, or
  /// structure-cache entry is skipped BY CONSTRUCTION, so in-place refill
  /// can never corrupt a broadcast someone still reads), else a fresh one.
  /// The pool is capped; overflow buffers are simply not retained.
  std::shared_ptr<PacketArena> acquire_arena();

  /// Flat twin of delta_packets' assembly body: clean packets are copied
  /// from the previous arena (headers and neighbor entries rebased, pool
  /// slice copied contiguously, metered bits carried over), dirty senders
  /// rebuilt from `g`. node_to_prev_ must already be prepared.
  void delta_flat(const Graph& g, const Configuration& conf,
                  bool with_neighborhood, ThreadPool* pool);

  NodeIndex index_;
  NodeIndex prev_index_;  ///< Double buffer: last round's index.
  bool first_round_ = true;
  bool flat_ = false;

  std::vector<std::shared_ptr<const std::vector<StateHandle>>> node_states_;
  std::vector<NodeId> changed_nodes_;
  bool occupancy_changed_ = true;
  std::uint64_t conf_digest_ = 0;

  PacketSet packets_;
  PacketSet prev_packets_;
  /// Retained arena buffers cycled through acquire_arena(). Small and
  /// bounded: current + previous broadcast plus however many rounds the
  /// caches pin, which the default StructureCache capacity keeps under the
  /// cap in steady state.
  std::vector<std::shared_ptr<PacketArena>> arena_pool_;
  /// Wire bits / sender node of each packet, aligned to packets_ order (and
  /// the prev_ pair to prev_packets_). Only maintained on untampered
  /// broadcasts -- the delta paths' sources.
  std::vector<std::size_t> packet_bits_each_, prev_packet_bits_each_;
  std::vector<NodeId> packet_nodes_, prev_packet_nodes_;
  std::size_t packet_bits_ = 0;
  std::size_t prev_packet_bits_ = 0;

  std::vector<std::int32_t> node_to_prev_;  ///< Scratch: node -> prev index.
  Counters counters_;
};

}  // namespace dyndisp
