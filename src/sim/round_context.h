// RoundContext: the per-round shared artifacts, each assembled exactly once.
//
// One CCM round under global communication needs three shared products:
//   * the node -> alive-robots index (robots_by_node),
//   * the per-occupied-node lists of serialized start-of-round states that
//     co-located robots exchange during Communicate, and
//   * the packet broadcast for the round's graph, with its wire-bit size.
// The seed engine rebuilt the index and the broadcast twice per round (once
// to meter bits, once to plan) and deep-copied state bytes into every view;
// RoundContext assembles each exactly once and hands out reference-counted
// handles instead. The index and state lists depend only on the
// configuration and the robots' states, so one context also serves every
// candidate graph a trap adversary probes within the round -- probes pay
// only for their candidate's packet assembly, not for re-serializing robots.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/byzantine.h"
#include "sim/sensing.h"

namespace dyndisp {

class ThreadPool;

class RoundContext {
 public:
  /// Builds the graph-independent artifacts: the node index and the shared
  /// per-node state lists. `states` holds every robot's serialized
  /// start-of-round state (id-1 indexed; dead robots' entries are unused)
  /// and must outlive the context.
  RoundContext(const Configuration& conf, const std::vector<StateHandle>& states);

  const NodeRobots& index() const { return index_; }

  /// The shared state list of node `v` (null for unoccupied nodes), parallel
  /// to index()[v]. Every view assembled on `v` attaches this same handle.
  const std::shared_ptr<const std::vector<StateHandle>>& node_states(
      NodeId v) const {
    return node_states_[v];
  }

  /// Assembles the packet broadcast for the round's actual graph exactly
  /// once: wire bits are metered during assembly (pre-tamper, matching the
  /// honest-wire-cost metric), then the optional Byzantine model corrupts
  /// the set, and the result is frozen behind the shared handle every view
  /// of the round receives. Call at most once per context.
  void assemble_packets(const Graph& g, const Configuration& conf,
                        bool with_neighborhood, const ByzantineModel* byzantine,
                        ThreadPool* pool);

  /// Builds a broadcast for a candidate graph a trap adversary probes,
  /// without touching the context's own broadcast. Tampering applies (the
  /// adversary predicts what the robots will actually receive).
  std::shared_ptr<const std::vector<InfoPacket>> assemble_candidate_packets(
      const Graph& g, const Configuration& conf, bool with_neighborhood,
      const ByzantineModel* byzantine, ThreadPool* pool) const;

  /// The round's broadcast; null until assemble_packets (or under local
  /// communication, where no packets propagate).
  const std::shared_ptr<const std::vector<InfoPacket>>& packets() const {
    return packets_;
  }

  /// Packets in the round's broadcast (== occupied nodes).
  std::size_t packet_count() const { return packets_ ? packets_->size() : 0; }

  /// Total wire bits of the round's broadcast, metered during assembly.
  std::size_t packet_bits() const { return packet_bits_; }

 private:
  NodeRobots index_;
  std::vector<std::shared_ptr<const std::vector<StateHandle>>> node_states_;
  std::shared_ptr<const std::vector<InfoPacket>> packets_;
  std::size_t packet_bits_ = 0;
};

}  // namespace dyndisp
