#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dynamic/validator.h"
#include "util/parallel.h"

namespace dyndisp {

Engine::Engine(Adversary& adversary, Configuration initial,
               const AlgorithmFactory& factory, EngineOptions options,
               FaultSchedule faults)
    : adversary_(adversary),
      conf_(std::move(initial)),
      options_(options),
      faults_(std::move(faults)) {
  if (adversary_.node_count() != conf_.node_count()) {
    throw std::invalid_argument(
        "engine: adversary and configuration disagree on node count");
  }
  const std::size_t k = conf_.robot_count();
  robots_.reserve(k);
  for (RobotId id = 1; id <= k; ++id) robots_.push_back(factory(id, k));
  arrival_ports_.assign(k, kInvalidPort);
  active_.assign(k, true);
  states_.assign(k, nullptr);
  state_bits_.assign(k, 0);
  activation_rng_ = Rng(options_.activation_seed);
  if (options_.threads > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
  if (!options_.allow_model_mismatch && !robots_.empty()) {
    const RobotAlgorithm& proto = *robots_.front();
    if (proto.requires_global_comm() && options_.comm != CommModel::kGlobal) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires global communication");
    }
    if (proto.requires_neighborhood() && !options_.neighborhood_knowledge) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires 1-neighborhood knowledge");
    }
  }
}

Engine::~Engine() = default;

std::string Engine::algorithm_name() const {
  return robots_.empty() ? "(none)" : robots_.front()->name();
}

void Engine::refresh_state(RobotId id) {
  BitWriter w;
  robots_[id - 1]->serialize(w);
  state_bits_[id - 1] = w.bit_count();
  states_[id - 1] = std::make_shared<const std::vector<std::uint8_t>>(w.bytes());
}

MovePlan Engine::plan_on(const Graph& g, const Configuration& conf,
                         Round round, const EngineOptions& options,
                         const std::vector<Port>& arrival_ports,
                         const std::vector<bool>& active,
                         const std::vector<RobotAlgorithm*>& robots,
                         const RoundContext& ctx,
                         std::shared_ptr<const std::vector<InfoPacket>> packets,
                         ThreadPool* pool) {
  const bool neighborhood = options.neighborhood_knowledge;
  const std::size_t k = conf.robot_count();

  // Phase 1: assemble all views against the synchronous snapshot. Each view
  // attaches the round's shared packet and state handles; nothing is copied
  // per robot beyond its own neighborhood scan.
  std::vector<RobotView> views(k);
  parallel_for(pool, k, [&](std::size_t i) {
    const RobotId id = static_cast<RobotId>(i + 1);
    if (!conf.alive(id) || !active[i]) return;
    RobotView view = make_view(g, conf, id, round, options.comm,
                               neighborhood, packets, &ctx.index());
    view.arrival_port = arrival_ports[i];
    view.colocated_states = ctx.node_states(conf.position(id));
    views[i] = std::move(view);
  });

  // Phase 2: every robot computes; state mutations cannot leak into views
  // (robots mutate only their own state, so the fan-out is race-free).
  MovePlan plan(k, kInvalidPort);
  parallel_for(pool, k, [&](std::size_t i) {
    const RobotId id = static_cast<RobotId>(i + 1);
    if (!conf.alive(id) || !active[i]) return;
    const Port p = robots[i]->step(views[i]);
    if (p != kInvalidPort && p > views[i].degree) {
      std::ostringstream os;
      os << "robot " << id << " chose invalid port " << p << " (degree "
         << views[i].degree << ") in round " << round;
      throw std::runtime_error(os.str());
    }
    plan[i] = options.byzantine
                  ? options.byzantine->override_move(id, p, views[i].degree,
                                                     round)
                  : p;
  });
  return plan;
}

MovePlan Engine::probe_plan(const Graph& candidate) const {
  assert(round_ctx_ != nullptr &&
         "probes only run while the engine is constructing a round");
  // Clone every robot so the dry run leaves persistent state untouched --
  // the adversary predicts, it does not perturb. State snapshots and the
  // node index are reused from the round context; only the candidate's own
  // packet broadcast is assembled.
  std::vector<std::unique_ptr<RobotAlgorithm>> clones;
  clones.reserve(robots_.size());
  std::vector<RobotAlgorithm*> raw;
  raw.reserve(robots_.size());
  for (const auto& r : robots_) {
    clones.push_back(r->clone());
    raw.push_back(clones.back().get());
  }
  std::shared_ptr<const std::vector<InfoPacket>> packets;
  if (options_.comm == CommModel::kGlobal) {
    packets = round_ctx_->assemble_candidate_packets(
        candidate, conf_, options_.neighborhood_knowledge,
        options_.byzantine.get(), pool_.get());
  }
  // The probe round number equals the round being constructed; the engine
  // stores it in probe_round_ via the lambda installed in run().
  return plan_on(candidate, conf_, probe_round_, options_, arrival_ports_,
                 active_, raw, *round_ctx_, std::move(packets), pool_.get());
}

MovePlan Engine::compute_plan(const Graph& g, Round round,
                              const RoundContext& ctx) {
  std::vector<RobotAlgorithm*> raw;
  raw.reserve(robots_.size());
  for (const auto& r : robots_) raw.push_back(r.get());
  return plan_on(g, conf_, round, options_, arrival_ports_, active_, raw, ctx,
                 ctx.packets(), pool_.get());
}

void Engine::draw_activation() {
  if (options_.activation == Activation::kSynchronous) {
    std::fill(active_.begin(), active_.end(), true);
    return;
  }
  if (options_.activation == Activation::kRoundRobin) {
    std::fill(active_.begin(), active_.end(), false);
    // Cycle to the next alive robot after the previous activation.
    const std::size_t k = conf_.robot_count();
    for (std::size_t step = 0; step < k; ++step) {
      round_robin_cursor_ = (round_robin_cursor_ % k) + 1;  // 1..k
      if (conf_.alive(static_cast<RobotId>(round_robin_cursor_))) {
        active_[round_robin_cursor_ - 1] = true;
        return;
      }
    }
    return;  // nobody alive
  }
  bool any = false;
  RobotId first_alive = kNoRobot;
  for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
    const bool alive = conf_.alive(id);
    if (alive && first_alive == kNoRobot) first_alive = id;
    active_[id - 1] =
        alive && activation_rng_.chance(options_.activation_probability);
    any |= active_[id - 1];
  }
  // Fair scheduler guarantee: at least one alive robot acts per round.
  if (!any && first_alive != kNoRobot) active_[first_alive - 1] = true;
}

RunResult Engine::run() {
  RunResult res;
  res.k = conf_.robot_count();
  res.initial_occupied = conf_.occupied_count();
  res.max_occupied = res.initial_occupied;

  std::vector<bool> ever_occupied(conf_.node_count(), false);
  std::size_t explored = 0;
  for (const NodeId v : conf_.occupied_nodes()) {
    ever_occupied[v] = true;
    ++explored;
  }
  if (explored == conf_.node_count()) res.exploration_round = 0;

  if (options_.record_progress)
    res.occupied_per_round.push_back(conf_.occupied_count());

  // Initial snapshot: every robot's state serialized once before round 0.
  for (RobotId id = 1; id <= conf_.robot_count(); ++id)
    if (conf_.alive(id)) refresh_state(id);

  for (Round r = 0; r < options_.max_rounds; ++r) {
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kBeforeCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
      }
    }
    if (conf_.is_dispersed()) {
      res.dispersed = true;
      res.rounds = r;
      res.final_config = conf_;
      res.max_memory_bits = meter_.max_bits();
      res.explored_nodes = explored;
      return res;
    }

    probe_round_ = r;
    draw_activation();
    // The round's shared artifacts: node index and state lists, built once
    // and valid for every candidate graph probed this round.
    RoundContext ctx(conf_, states_);
    round_ctx_ = &ctx;
    if (adversary_.wants_plan_probe()) {
      adversary_.set_plan_probe(
          [this](const Graph& g) { return probe_plan(g); });
    }
    Graph g = adversary_.next_graph(r, conf_);
    if (options_.validate_graphs) {
      if (std::string err = validate_round_graph(g, conf_.node_count());
          !err.empty()) {
        round_ctx_ = nullptr;
        throw InvariantViolation(r, "round-graph",
                                 "adversary " + adversary_.name() +
                                     " emitted invalid graph in round " +
                                     std::to_string(r) + ": " + err);
      }
    }
    if (options_.comm == CommModel::kGlobal) {
      // Single assembly per round: build the broadcast and meter its wire
      // bits in one pass, then share it with every view via handle.
      ctx.assemble_packets(g, conf_, options_.neighborhood_knowledge,
                           options_.byzantine.get(), pool_.get());
      res.packets_sent += ctx.packet_count();
      res.packet_bits_sent += ctx.packet_bits();
    }

    MovePlan plan = compute_plan(g, r, ctx);
    round_ctx_ = nullptr;

    bool crashed_this_round =
        !faults_.crashes_at(r, CrashPhase::kBeforeCommunicate).empty();
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kAfterCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
        plan[id - 1] = kInvalidPort;
        crashed_this_round = true;
      }
    }

    const Configuration before = conf_;
    for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
      if (!conf_.alive(id)) continue;
      const Port p = plan[id - 1];
      if (p == kInvalidPort) continue;
      const HalfEdge& he = g.half_edge(before.position(id), p);
      conf_.set_position(id, he.to);
      arrival_ports_[id - 1] = he.reverse_port;
      ++res.total_moves;
    }

    // End of round: robots that stepped re-serialize (their state may have
    // changed); every alive robot's current state size is metered from the
    // stored bit counts -- no second serialization pass.
    for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
      if (!conf_.alive(id)) continue;
      if (active_[id - 1]) refresh_state(id);
      meter_.record_bits(state_bits_[id - 1]);
    }

    std::size_t newly = 0;
    for (const NodeId v : conf_.occupied_nodes()) {
      if (!ever_occupied[v]) {
        ever_occupied[v] = true;
        ++newly;
        ++explored;
      }
    }
    if (explored == conf_.node_count() &&
        res.exploration_round == RunResult::kNeverExplored) {
      res.exploration_round = r + 1;
    }
    if (newly == 0 && !crashed_this_round) ++res.stalled_rounds;
    res.max_occupied = std::max(res.max_occupied, conf_.occupied_count());
    if (options_.record_progress)
      res.occupied_per_round.push_back(conf_.occupied_count());
    if (options_.invariant_checker) {
      // Oracles see the round exactly as executed: the emitted graph, both
      // configurations, the chosen plan, and the metered memory peak.
      options_.invariant_checker(RoundSnapshot{
          r, g, before, conf_, plan, newly, crashed_this_round,
          meter_.max_bits()});
    }
    if (options_.record_trace) {
      RoundRecord rec;
      rec.round = r;
      rec.graph = std::move(g);
      rec.before = before;
      rec.moves = std::move(plan);
      rec.after = conf_;
      rec.newly_occupied = newly;
      res.trace.add(std::move(rec));
    }
  }

  res.dispersed = conf_.is_dispersed();
  res.rounds = options_.max_rounds;
  res.final_config = conf_;
  res.max_memory_bits = meter_.max_bits();
  res.explored_nodes = explored;
  return res;
}

}  // namespace dyndisp
