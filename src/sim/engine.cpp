#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/planner.h"
#include "core/structure_cache.h"
#include "dynamic/validator.h"
#include "util/memprobe.h"
#include "util/parallel.h"
#include "util/phase_clock.h"

namespace dyndisp {

Engine::Engine(Adversary& adversary, Configuration initial,
               const AlgorithmFactory& factory, EngineOptions options,
               FaultSchedule faults)
    : adversary_(adversary),
      conf_(std::move(initial)),
      options_(options),
      faults_(std::move(faults)) {
  ctx_.set_flat_packets(options_.flat_packets);
  if (adversary_.node_count() != conf_.node_count()) {
    throw std::invalid_argument(
        "engine: adversary and configuration disagree on node count");
  }
  const std::size_t k = conf_.robot_count();
  robots_.reserve(k);
  for (RobotId id = 1; id <= k; ++id) robots_.push_back(factory(id, k));
  raw_robots_.reserve(k);
  for (const auto& r : robots_) raw_robots_.push_back(r.get());
  arrival_ports_.assign(k, kInvalidPort);
  active_.assign(k, true);
  states_.assign(k, nullptr);
  state_bits_.assign(k, 0);
  activation_rng_ = Rng(options_.activation_seed);
  // Aggregate view needs: a field is assembled if ANY robot declares it.
  // The legacy loop always assembles everything.
  if (options_.soa && !robots_.empty()) {
    needs_ = robots_.front()->view_needs();
    for (std::size_t i = 1; i < robots_.size(); ++i)
      needs_.merge(robots_[i]->view_needs());
  }
  if (options_.threads > 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
  // Adversaries with counter-stream builders fan graph construction over
  // the compute pool (byte-identical at any lane count; null = serial).
  adversary_.set_thread_pool(pool_.get());
  if (!options_.allow_model_mismatch && !robots_.empty()) {
    const RobotAlgorithm& proto = *robots_.front();
    if (proto.requires_global_comm() && options_.comm != CommModel::kGlobal) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires global communication");
    }
    if (proto.requires_neighborhood() && !options_.neighborhood_knowledge) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires 1-neighborhood knowledge");
    }
  }
}

Engine::~Engine() = default;

std::string Engine::algorithm_name() const {
  return robots_.empty() ? "(none)" : robots_.front()->name();
}

void Engine::refresh_state(RobotId id) {
  BitWriter& w = state_writer_;
  w.clear();
  robots_[id - 1]->serialize(w);
  state_bits_[id - 1] = w.bit_count();
  // Settled robots re-serialize to identical bytes round after round; keep
  // the existing handle then, so downstream pointer-equality reuse (per-node
  // state lists, and through them whole views) fires. Byte-compare decides
  // -- a changed state always gets a fresh handle.
  const StateHandle& slot = states_[id - 1];
  if (slot && *slot == w.bytes()) {
    ++state_handles_reused_;
    return;
  }
  states_[id - 1] = std::make_shared<const std::vector<std::uint8_t>>(w.bytes());
}

ReuseHints Engine::make_hints(const Graph& g) const {
  ReuseHints hints;
  hints.valid = options_.structure_cache && options_.comm == CommModel::kGlobal &&
                options_.byzantine == nullptr;
  hints.neighborhood = options_.neighborhood_knowledge;
  hints.graph_fp = g.fingerprint();
  hints.conf_digest = ctx_.conf_digest();
  return hints;
}

void Engine::plan_on(const Graph& g, const Configuration& conf,
                     Round round, const EngineOptions& options,
                     const std::vector<Port>& arrival_ports,
                     const std::vector<bool>& active,
                     const std::vector<RobotAlgorithm*>& robots,
                     const RoundContext& ctx, PacketSet packets,
                     const ReuseHints& hints, ThreadPool* pool,
                     std::vector<RobotView>* view_arena,
                     const ViewNeeds& needs, MovePlan& plan) {
  const bool neighborhood = options.neighborhood_knowledge;
  const std::size_t k = conf.robot_count();

  // Phase 1: assemble all views against the synchronous snapshot. Each view
  // attaches the round's shared packet and state handles; nothing is copied
  // per robot beyond its own neighborhood scan. The SoA loop hands in a
  // persistent arena: each robot's slot is refilled in place (vector
  // capacities survive across rounds) and fields outside the run's declared
  // needs are skipped; the legacy loop constructs fresh full views.
  std::vector<RobotView> local_views;
  if (view_arena == nullptr) {
    local_views.resize(k);
  } else if (view_arena->size() != k) {
    view_arena->resize(k);
  }
  std::vector<RobotView>& views = view_arena ? *view_arena : local_views;
  parallel_for(pool, k, [&](std::size_t i) {
    const RobotId id = static_cast<RobotId>(i + 1);
    if (!conf.alive(id) || !active[i]) return;
    if (view_arena != nullptr) {
      RobotView& view = views[i];
      fill_view(view, g, conf, id, round, options.comm, neighborhood, packets,
                ctx.index(), needs);
      view.arrival_port = arrival_ports[i];
      if (needs.colocated_states)
        view.colocated_states = ctx.node_states(conf.position(id));
      view.reuse = hints;
      return;
    }
    RobotView view = make_view(g, conf, id, round, options.comm,
                               neighborhood, packets, ctx.index());
    view.arrival_port = arrival_ports[i];
    view.colocated_states = ctx.node_states(conf.position(id));
    view.reuse = hints;
    views[i] = std::move(view);
  });

  // Phase 2: every robot computes; state mutations cannot leak into views
  // (robots mutate only their own state, so the fan-out is race-free).
  plan.assign(k, kInvalidPort);
  parallel_for(pool, k, [&](std::size_t i) {
    const RobotId id = static_cast<RobotId>(i + 1);
    if (!conf.alive(id) || !active[i]) return;
    const Port p = robots[i]->step(views[i]);
    if (p != kInvalidPort && p > views[i].degree) {
      std::ostringstream os;
      os << "robot " << id << " chose invalid port " << p << " (degree "
         << views[i].degree << ") in round " << round;
      throw std::runtime_error(os.str());
    }
    plan[i] = options.byzantine
                  ? options.byzantine->override_move(id, p, views[i].degree,
                                                     round)
                  : p;
  });
}

MovePlan Engine::probe_plan(const Graph& candidate) const {
  assert(round_ctx_ != nullptr &&
         "probes only run while the engine is constructing a round");
  // Clone every robot so the dry run leaves persistent state untouched --
  // the adversary predicts, it does not perturb. State snapshots and the
  // node index are reused from the round context; only the candidate's own
  // packet broadcast is assembled.
  std::vector<std::unique_ptr<RobotAlgorithm>> clones;
  clones.reserve(robots_.size());
  std::vector<RobotAlgorithm*> raw;
  raw.reserve(robots_.size());
  for (const auto& r : robots_) {
    clones.push_back(r->clone());
    raw.push_back(clones.back().get());
  }
  PacketSet packets;
  if (options_.comm == CommModel::kGlobal) {
    packets = round_ctx_->assemble_candidate_packets(
        candidate, conf_, options_.neighborhood_knowledge,
        options_.byzantine.get(), pool_.get());
  }
  // The probe round number equals the round being constructed; the engine
  // stores it in probe_round_ via the lambda installed in run(). Probe hints
  // carry the CANDIDATE's fingerprint: the dry-run broadcast is a function
  // of the candidate graph, and a cached structure only serves it after a
  // content compare, so probing can never leak a wrong plan.
  MovePlan plan;
  plan_on(candidate, conf_, probe_round_, options_, arrival_ports_, active_,
          raw, *round_ctx_, std::move(packets), make_hints(candidate),
          pool_.get(), options_.soa ? &views_arena_ : nullptr, needs_, plan);
  return plan;
}

MovePlan& Engine::compute_plan(const Graph& g, Round round,
                               const RoundContext& ctx) {
  // The real round carries the graph-change classification the loop just
  // derived; probe_plan's hints stay kUnknown (candidates have no
  // cross-round relation).
  ReuseHints hints = make_hints(g);
  hints.change = round_change_;
  plan_on(g, conf_, round, options_, arrival_ports_, active_, raw_robots_,
          ctx, ctx.packets(), hints, pool_.get(),
          options_.soa ? &views_arena_ : nullptr, needs_, plan_buf_);
  return plan_buf_;
}

void Engine::draw_activation() {
  if (options_.activation == Activation::kSynchronous) {
    std::fill(active_.begin(), active_.end(), true);
    return;
  }
  if (options_.activation == Activation::kRoundRobin) {
    std::fill(active_.begin(), active_.end(), false);
    // Cycle to the next alive robot after the previous activation.
    const std::size_t k = conf_.robot_count();
    for (std::size_t step = 0; step < k; ++step) {
      round_robin_cursor_ = (round_robin_cursor_ % k) + 1;  // 1..k
      if (conf_.alive(static_cast<RobotId>(round_robin_cursor_))) {
        active_[round_robin_cursor_ - 1] = true;
        return;
      }
    }
    return;  // nobody alive
  }
  bool any = false;
  RobotId first_alive = kNoRobot;
  for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
    const bool alive = conf_.alive(id);
    if (alive && first_alive == kNoRobot) first_alive = id;
    active_[id - 1] =
        alive && activation_rng_.chance(options_.activation_probability);
    any |= active_[id - 1];
  }
  // Fair scheduler guarantee: at least one alive robot acts per round.
  if (!any && first_alive != kNoRobot) active_[first_alive - 1] = true;
}

RunResult Engine::run() {
  RunResult res;
  res.k = conf_.robot_count();
  res.initial_occupied = conf_.occupied_count();
  res.max_occupied = res.initial_occupied;

  // StructureCache counters are process-wide; a start-of-run snapshot turns
  // them into per-run deltas (exact when runs execute one at a time).
  const core::StructureCacheStats sc_before =
      core::StructureCache::global_stats();
  const auto finalize_stats = [&]() {
    const RoundContext::Counters& rc = ctx_.counters();
    res.stats.packets_copied = rc.packets_copied;
    res.stats.packets_rebuilt = rc.packets_rebuilt;
    res.stats.node_state_lists_reused = rc.node_state_lists_reused;
    res.stats.scratch_reuses = rc.scratch_reuses;
    res.stats.state_handles_reused = state_handles_reused_;
    const core::StructureCacheStats sc_after =
        core::StructureCache::global_stats();
    res.stats.sc_exact_hits = sc_after.exact_hits - sc_before.exact_hits;
    res.stats.sc_delta_rounds = sc_after.delta_rounds - sc_before.delta_rounds;
    res.stats.sc_full_builds = sc_after.full_builds - sc_before.full_builds;
    res.stats.sc_components_reused =
        sc_after.components_reused - sc_before.components_reused;
    res.stats.sc_components_rebuilt =
        sc_after.components_rebuilt - sc_before.components_rebuilt;
    res.stats.sc_evictions = sc_after.evictions - sc_before.evictions;
  };

  // Exploration tracking on occupancy bitset words: ever-occupied is the
  // running OR of the configuration's occupied words, and newly-occupied
  // counts are popcounts of occ & ~ever -- no per-node scan, no per-round
  // allocation.
  std::vector<std::uint64_t> ever_words = conf_.occupied_words();
  std::size_t explored = conf_.occupied_count();
  res.stats.occupancy_words = ever_words.size();
  if (explored == conf_.node_count()) res.exploration_round = 0;

  if (options_.record_progress)
    res.occupied_per_round.push_back(conf_.occupied_count());

  // Initial snapshot: every robot's state serialized once before round 0.
  for (RobotId id = 1; id <= conf_.robot_count(); ++id)
    if (conf_.alive(id)) refresh_state(id);

  for (Round r = 0; r < options_.max_rounds; ++r) {
    // Allocation window: opened as the loop body's first statement and
    // closed (with its push_back) as the last, so the probe's own recording
    // never lands inside any measured round.
    const std::uint64_t round_allocs_start = memprobe::allocation_count();
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kBeforeCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
      }
    }
    if (conf_.is_dispersed()) {
      res.dispersed = true;
      res.rounds = r;
      res.final_config = conf_;
      res.max_memory_bits = meter_.max_bits();
      res.explored_nodes = explored;
      finalize_stats();
      return res;
    }

    probe_round_ = r;
    draw_activation();
    // The round's shared artifacts: node index, occupancy diff, and state
    // lists -- rebuilt into the persistent context's retained buffers and
    // valid for every candidate graph probed this round. The state-list
    // refresh is skipped when no robot of the run reads exchanged states
    // (SoA loop + aggregated ViewNeeds).
    const bool build_state_lists = !options_.soa || needs_.colocated_states;
    ctx_.begin_round(conf_, states_, build_state_lists);
    if (!build_state_lists) ++res.stats.state_list_rounds_skipped;
    if (options_.soa) ++res.stats.soa_rounds;
    round_ctx_ = &ctx_;
    if (adversary_.wants_plan_probe()) {
      adversary_.set_plan_probe(
          [this](const Graph& g) { return probe_plan(g); });
    }

    // Phase buckets (observability only; see RoundLoopStats). ph_* are
    // boundary timestamps: graph_build = [t0,t1), broadcast = [t1,t2),
    // compute phase = [t2,t3) split into plan (planner accumulator delta)
    // and the remainder, move = [t3,t4).
    const std::uint64_t ph_t0 = phase_clock_ns();
    const bool sc = options_.structure_cache;
    bool same_graph = false;   // G_r provably operator== G_{r-1}
    bool small_delta = false;  // G_r near G_{r-1}; graph_delta_ holds the diff
    if (sc && have_graph_ && adversary_.same_as_last(r, conf_)) {
      // Honest hint (conformance-tested per adversary): the graph the
      // adversary would emit equals the one it last emitted, which is
      // graph_. Skip constructing it at all.
      same_graph = true;
      ++res.stats.graph_reuses;
    } else {
      // Double-buffered emission: the adversary refills the round-before-
      // last's Graph in place (next_graph_into recycles its rows), and a
      // swap promotes it -- no per-round Graph allocation in steady state.
      adversary_.next_graph_into(r, conf_, scratch_graph_);
      const Graph& g = scratch_graph_;
      if (sc && have_graph_) {
        if (g.fingerprint() == graph_.fingerprint() && g == graph_) {
          same_graph = true;
        } else {
          // Capped scan: a delta is only useful up to n/4 changed nodes
          // (beyond that full reassembly is cheaper), so churn-heavy rounds
          // abandon the comparison as soon as that is certain instead of
          // paying for a full edge-level diff.
          small_delta = g.changed_nodes_into(graph_, graph_delta_.changed_nodes,
                                             conf_.node_count() / 4);
        }
      }
      std::swap(graph_, scratch_graph_);
      have_graph_ = true;
      if (!same_graph) graph_validated_ = false;
    }
    if (same_graph) ++res.stats.same_graph_rounds;
    // incremental_planning=false is the differential lever: every round
    // reads as full churn, so the plan layer re-plans statelessly each
    // round (the full-re-plan leg the incremental oracle diffs against).
    round_change_ = !options_.incremental_planning ? GraphChange::kFullChurn
                    : same_graph                   ? GraphChange::kSame
                    : small_delta                  ? GraphChange::kSmallDelta
                                                   : GraphChange::kFullChurn;

    if (options_.validate_graphs) {
      const std::uint64_t fp = graph_.fingerprint();
      if (sc && same_graph && graph_validated_ && validated_fp_ == fp) {
        // The identical graph already passed validation; re-running it
        // would re-derive the same verdict.
        ++res.stats.validations_skipped;
      } else if (std::string err =
                     validate_round_graph(graph_, conf_.node_count());
                 !err.empty()) {
        round_ctx_ = nullptr;
        throw InvariantViolation(r, "round-graph",
                                 "adversary " + adversary_.name() +
                                     " emitted invalid graph in round " +
                                     std::to_string(r) + ": " + err);
      } else {
        graph_validated_ = true;
        validated_fp_ = fp;
      }
    }
    const std::uint64_t ph_t1 = phase_clock_ns();
    res.stats.phase_graph_build_ms += phase_ns_to_ms(ph_t1 - ph_t0);

    if (options_.comm == CommModel::kGlobal) {
      const bool can_source = sc && options_.byzantine == nullptr &&
                              ctx_.has_prev_packets();
      if (can_source && same_graph && !ctx_.occupancy_changed()) {
        // Both broadcast inputs are unchanged: republish the previous
        // round's packets by handle, bits ledger and all.
        ctx_.reuse_packets();
        ++res.stats.broadcasts_reused;
      } else if (can_source && (same_graph || small_delta)) {
        // Delta reassembly. A sender's packet reads its own adjacency, its
        // own robots, and the robots on each CURRENT neighbor, so the dirty
        // set is: occupancy-changed nodes, their new-graph neighbors, and
        // (when the graph moved) every node whose adjacency changed. An
        // old-graph-only neighbor of v implies v's adjacency changed, so
        // the union covers that case too.
        dirty_nodes_.clear();
        for (const NodeId v : ctx_.changed_nodes()) {
          dirty_nodes_.push_back(v);
          for (Port p = 1; p <= graph_.degree(v); ++p)
            dirty_nodes_.push_back(graph_.neighbor(v, p));
        }
        if (!same_graph)
          for (const NodeId v : graph_delta_.changed_nodes)
            dirty_nodes_.push_back(v);
        std::sort(dirty_nodes_.begin(), dirty_nodes_.end());
        dirty_nodes_.erase(
            std::unique(dirty_nodes_.begin(), dirty_nodes_.end()),
            dirty_nodes_.end());
        ctx_.delta_packets(graph_, conf_, options_.neighborhood_knowledge,
                           dirty_nodes_, pool_.get());
        ++res.stats.broadcast_deltas;
      } else {
        // Single assembly per round: build the broadcast and meter its wire
        // bits in one pass, then share it with every view via handle.
        ctx_.assemble_packets(graph_, conf_, options_.neighborhood_knowledge,
                              options_.byzantine.get(), pool_.get());
      }
      res.packets_sent += ctx_.packet_count();
      res.packet_bits_sent += ctx_.packet_bits();
      if (options_.flat_packets) ++res.stats.flat_rounds;
      if (options_.packet_observer) {
        options_.packet_observer(r, ctx_.packet_count(), ctx_.packet_bits(),
                                 packet_set_digest(ctx_.packets()));
      }
    }

    const std::uint64_t ph_t2 = phase_clock_ns();
    res.stats.phase_broadcast_ms += phase_ns_to_ms(ph_t2 - ph_t1);

    const std::uint64_t plan_ns_before = core::planner_time_ns();
    MovePlan& plan = compute_plan(graph_, r, ctx_);
    const std::uint64_t ph_t3 = phase_clock_ns();
    // The compute phase's planner share: exactly one robot pays the
    // PlanCache miss and derives the round's plan; the accumulator delta is
    // that derivation's wall time. The remainder is view assembly plus the
    // robots' own steps (clamped: with threads > 1 the per-lane planner
    // time can exceed the phase's elapsed wall time).
    const double plan_ms =
        phase_ns_to_ms(core::planner_time_ns() - plan_ns_before);
    const double compute_wall_ms = phase_ns_to_ms(ph_t3 - ph_t2);
    res.stats.phase_plan_ms += plan_ms;
    res.stats.phase_compute_ms +=
        compute_wall_ms > plan_ms ? compute_wall_ms - plan_ms : 0.0;
    round_ctx_ = nullptr;
    if (options_.soa) {
      for (std::size_t i = 0; i < active_.size(); ++i)
        if (active_[i] && conf_.alive(static_cast<RobotId>(i + 1)))
          ++res.stats.arena_views;
    }

    bool crashed_this_round =
        !faults_.crashes_at(r, CrashPhase::kBeforeCommunicate).empty();
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kAfterCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
        plan[id - 1] = kInvalidPort;
        crashed_this_round = true;
      }
    }

    // The Move phase needs no start-of-round snapshot: each robot's source
    // node is read from conf_ BEFORE its own write, and no robot reads
    // another robot's position. The full copy exists solely for observers
    // (invariant checkers, traces); the SoA loop elides it when nothing
    // observes it.
    const bool need_before =
        !options_.soa || options_.invariant_checker || options_.record_trace;
    Configuration before;
    if (need_before)
      before = conf_;
    else
      ++res.stats.before_copies_skipped;
    for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
      if (!conf_.alive(id)) continue;
      const Port p = plan[id - 1];
      if (p == kInvalidPort) continue;
      const HalfEdge& he = graph_.half_edge(conf_.position(id), p);
      conf_.set_position(id, he.to);
      arrival_ports_[id - 1] = he.reverse_port;
      ++res.total_moves;
    }

    // End of round: robots that stepped re-serialize (their state may have
    // changed); every alive robot's current state size is metered from the
    // stored bit counts -- no second serialization pass.
    for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
      if (!conf_.alive(id)) continue;
      if (active_[id - 1]) refresh_state(id);
      meter_.record_bits(state_bits_[id - 1]);
    }
    res.stats.phase_move_ms += phase_ns_to_ms(phase_clock_ns() - ph_t3);

    std::size_t newly = 0;
    const std::vector<std::uint64_t>& occ_words = conf_.occupied_words();
    for (std::size_t w = 0; w < occ_words.size(); ++w) {
      const std::uint64_t fresh = occ_words[w] & ~ever_words[w];
      if (fresh == 0) continue;
      newly += static_cast<std::size_t>(std::popcount(fresh));
      ever_words[w] |= fresh;
    }
    explored += newly;
    if (explored == conf_.node_count() &&
        res.exploration_round == RunResult::kNeverExplored) {
      res.exploration_round = r + 1;
    }
    if (newly == 0 && !crashed_this_round) ++res.stalled_rounds;
    res.max_occupied = std::max(res.max_occupied, conf_.occupied_count());
    if (options_.record_progress)
      res.occupied_per_round.push_back(conf_.occupied_count());
    if (options_.invariant_checker) {
      // Oracles see the round exactly as executed: the emitted graph, both
      // configurations, the chosen plan, and the metered memory peak.
      options_.invariant_checker(RoundSnapshot{
          r, graph_, before, conf_, plan, newly, crashed_this_round,
          meter_.max_bits()});
    }
    if (options_.record_trace) {
      RoundRecord rec;
      rec.round = r;
      // Copy, not move: graph_ persists as the next round's G_{r-1}.
      rec.graph = graph_;
      rec.before = before;
      rec.moves = plan;  // Copy: plan_buf_ persists across rounds.
      rec.after = conf_;
      rec.newly_occupied = newly;
      res.trace.add(std::move(rec));
    }
    if (options_.alloc_probe) {
      res.allocs_per_round.push_back(memprobe::allocation_count() -
                                     round_allocs_start);
    }
  }

  res.dispersed = conf_.is_dispersed();
  res.rounds = options_.max_rounds;
  res.final_config = conf_;
  res.max_memory_bits = meter_.max_bits();
  res.explored_nodes = explored;
  finalize_stats();
  return res;
}

}  // namespace dyndisp
