#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "dynamic/validator.h"

namespace dyndisp {

Engine::Engine(Adversary& adversary, Configuration initial,
               const AlgorithmFactory& factory, EngineOptions options,
               FaultSchedule faults)
    : adversary_(adversary),
      conf_(std::move(initial)),
      options_(options),
      faults_(std::move(faults)) {
  if (adversary_.node_count() != conf_.node_count()) {
    throw std::invalid_argument(
        "engine: adversary and configuration disagree on node count");
  }
  const std::size_t k = conf_.robot_count();
  robots_.reserve(k);
  for (RobotId id = 1; id <= k; ++id) robots_.push_back(factory(id, k));
  arrival_ports_.assign(k, kInvalidPort);
  active_.assign(k, true);
  activation_rng_ = Rng(options_.activation_seed);
  if (!options_.allow_model_mismatch && !robots_.empty()) {
    const RobotAlgorithm& proto = *robots_.front();
    if (proto.requires_global_comm() && options_.comm != CommModel::kGlobal) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires global communication");
    }
    if (proto.requires_neighborhood() && !options_.neighborhood_knowledge) {
      throw std::invalid_argument("engine: " + proto.name() +
                                  " requires 1-neighborhood knowledge");
    }
  }
}

std::string Engine::algorithm_name() const {
  return robots_.empty() ? "(none)" : robots_.front()->name();
}

MovePlan Engine::plan_on(const Graph& g, const Configuration& conf,
                         Round round, const EngineOptions& options,
                         const std::vector<Port>& arrival_ports,
                         const std::vector<bool>& active,
                         const std::vector<RobotAlgorithm*>& robots) {
  const bool neighborhood = options.neighborhood_knowledge;
  const NodeRobots index = robots_by_node(conf);
  std::shared_ptr<const std::vector<InfoPacket>> packets;
  if (options.comm == CommModel::kGlobal) {
    auto assembled = make_all_packets(g, conf, neighborhood, &index);
    if (options.byzantine) options.byzantine->tamper(assembled);
    packets = std::make_shared<const std::vector<InfoPacket>>(
        std::move(assembled));
  }

  // Snapshot every robot's start-of-round persistent state once; co-located
  // robots exchange these during Communicate.
  std::vector<std::vector<std::uint8_t>> states(conf.robot_count());
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    BitWriter w;
    robots[id - 1]->serialize(w);
    states[id - 1] = w.bytes();
  }

  // Phase 1: assemble all views against the synchronous snapshot.
  std::vector<RobotView> views(conf.robot_count());
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id) || !active[id - 1]) continue;
    RobotView view = make_view(g, conf, id, round, options.comm,
                               neighborhood, packets, &index);
    view.arrival_port = arrival_ports[id - 1];
    view.colocated_states.reserve(view.colocated.size());
    for (const RobotId peer : view.colocated)
      view.colocated_states.push_back(states[peer - 1]);
    views[id - 1] = std::move(view);
  }

  // Phase 2: every robot computes; state mutations cannot leak into views.
  MovePlan plan(conf.robot_count(), kInvalidPort);
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id) || !active[id - 1]) continue;
    const Port p = robots[id - 1]->step(views[id - 1]);
    if (p != kInvalidPort && p > views[id - 1].degree) {
      std::ostringstream os;
      os << "robot " << id << " chose invalid port " << p << " (degree "
         << views[id - 1].degree << ") in round " << round;
      throw std::runtime_error(os.str());
    }
    plan[id - 1] = options.byzantine
                       ? options.byzantine->override_move(
                             id, p, views[id - 1].degree, round)
                       : p;
  }
  return plan;
}

MovePlan Engine::probe_plan(const Graph& candidate) const {
  // Clone every robot so the dry run leaves persistent state untouched --
  // the adversary predicts, it does not perturb.
  std::vector<std::unique_ptr<RobotAlgorithm>> clones;
  clones.reserve(robots_.size());
  std::vector<RobotAlgorithm*> raw;
  raw.reserve(robots_.size());
  for (const auto& r : robots_) {
    clones.push_back(r->clone());
    raw.push_back(clones.back().get());
  }
  // The probe round number equals the round being constructed; the engine
  // stores it in probe_round_ via the lambda installed in run().
  return plan_on(candidate, conf_, probe_round_, options_, arrival_ports_,
                 active_, raw);
}

MovePlan Engine::compute_plan(const Graph& g, Round round) {
  std::vector<RobotAlgorithm*> raw;
  raw.reserve(robots_.size());
  for (const auto& r : robots_) raw.push_back(r.get());
  return plan_on(g, conf_, round, options_, arrival_ports_, active_, raw);
}

void Engine::draw_activation() {
  if (options_.activation == Activation::kSynchronous) {
    std::fill(active_.begin(), active_.end(), true);
    return;
  }
  if (options_.activation == Activation::kRoundRobin) {
    std::fill(active_.begin(), active_.end(), false);
    // Cycle to the next alive robot after the previous activation.
    const std::size_t k = conf_.robot_count();
    for (std::size_t step = 0; step < k; ++step) {
      round_robin_cursor_ = (round_robin_cursor_ % k) + 1;  // 1..k
      if (conf_.alive(static_cast<RobotId>(round_robin_cursor_))) {
        active_[round_robin_cursor_ - 1] = true;
        return;
      }
    }
    return;  // nobody alive
  }
  bool any = false;
  RobotId first_alive = kNoRobot;
  for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
    const bool alive = conf_.alive(id);
    if (alive && first_alive == kNoRobot) first_alive = id;
    active_[id - 1] =
        alive && activation_rng_.chance(options_.activation_probability);
    any |= active_[id - 1];
  }
  // Fair scheduler guarantee: at least one alive robot acts per round.
  if (!any && first_alive != kNoRobot) active_[first_alive - 1] = true;
}

RunResult Engine::run() {
  RunResult res;
  res.k = conf_.robot_count();
  res.initial_occupied = conf_.occupied_count();
  res.max_occupied = res.initial_occupied;

  std::vector<bool> ever_occupied(conf_.node_count(), false);
  std::size_t explored = 0;
  for (const NodeId v : conf_.occupied_nodes()) {
    ever_occupied[v] = true;
    ++explored;
  }
  if (explored == conf_.node_count()) res.exploration_round = 0;

  if (options_.record_progress)
    res.occupied_per_round.push_back(conf_.occupied_count());

  for (Round r = 0; r < options_.max_rounds; ++r) {
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kBeforeCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
      }
    }
    if (conf_.is_dispersed()) {
      res.dispersed = true;
      res.rounds = r;
      res.final_config = conf_;
      res.max_memory_bits = meter_.max_bits();
      res.explored_nodes = explored;
      return res;
    }

    probe_round_ = r;
    draw_activation();
    if (adversary_.wants_plan_probe()) {
      adversary_.set_plan_probe(
          [this](const Graph& g) { return probe_plan(g); });
    }
    Graph g = adversary_.next_graph(r, conf_);
    if (options_.validate_graphs) {
      if (std::string err = validate_round_graph(g, conf_.node_count());
          !err.empty()) {
        throw std::runtime_error("adversary " + adversary_.name() +
                                 " emitted invalid graph in round " +
                                 std::to_string(r) + ": " + err);
      }
    }
    if (options_.comm == CommModel::kGlobal) {
      res.packets_sent += conf_.occupied_count();
      const NodeRobots index = robots_by_node(conf_);
      for (const InfoPacket& pkt : make_all_packets(
               g, conf_, options_.neighborhood_knowledge, &index)) {
        res.packet_bits_sent +=
            packet_bit_size(pkt, conf_.robot_count(), conf_.node_count());
      }
    }

    MovePlan plan = compute_plan(g, r);

    bool crashed_this_round =
        !faults_.crashes_at(r, CrashPhase::kBeforeCommunicate).empty();
    for (const RobotId id : faults_.crashes_at(r, CrashPhase::kAfterCommunicate)) {
      if (conf_.alive(id)) {
        conf_.kill(id);
        ++res.crashed;
        plan[id - 1] = kInvalidPort;
        crashed_this_round = true;
      }
    }

    const Configuration before = conf_;
    for (RobotId id = 1; id <= conf_.robot_count(); ++id) {
      if (!conf_.alive(id)) continue;
      const Port p = plan[id - 1];
      if (p == kInvalidPort) continue;
      const HalfEdge& he = g.half_edge(before.position(id), p);
      conf_.set_position(id, he.to);
      arrival_ports_[id - 1] = he.reverse_port;
      ++res.total_moves;
    }

    for (RobotId id = 1; id <= conf_.robot_count(); ++id)
      if (conf_.alive(id)) meter_.record(*robots_[id - 1]);

    std::size_t newly = 0;
    for (const NodeId v : conf_.occupied_nodes()) {
      if (!ever_occupied[v]) {
        ever_occupied[v] = true;
        ++newly;
        ++explored;
      }
    }
    if (explored == conf_.node_count() &&
        res.exploration_round == RunResult::kNeverExplored) {
      res.exploration_round = r + 1;
    }
    if (newly == 0 && !crashed_this_round) ++res.stalled_rounds;
    res.max_occupied = std::max(res.max_occupied, conf_.occupied_count());
    if (options_.record_progress)
      res.occupied_per_round.push_back(conf_.occupied_count());
    if (options_.record_trace) {
      RoundRecord rec;
      rec.round = r;
      rec.graph = std::move(g);
      rec.before = before;
      rec.moves = std::move(plan);
      rec.after = conf_;
      rec.newly_occupied = newly;
      res.trace.add(std::move(rec));
    }
  }

  res.dispersed = conf_.is_dispersed();
  res.rounds = options_.max_rounds;
  res.final_config = conf_;
  res.max_memory_bits = meter_.max_bits();
  res.explored_nodes = explored;
  return res;
}

}  // namespace dyndisp
