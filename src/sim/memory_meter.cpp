#include "sim/memory_meter.h"

#include <algorithm>

namespace dyndisp {

void MemoryMeter::record(const RobotAlgorithm& algo) {
  BitWriter w;
  algo.serialize(w);
  max_bits_ = std::max(max_bits_, w.bit_count());
  ++samples_;
}

}  // namespace dyndisp
