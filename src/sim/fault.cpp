#include "sim/fault.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dyndisp {

FaultSchedule::FaultSchedule(std::vector<CrashEvent> events)
    : events_(std::move(events)) {
  for (const CrashEvent& e : events_) by_round_.emplace(e.round, e);
}

FaultSchedule FaultSchedule::random(std::size_t k, std::size_t f,
                                    Round horizon, Rng& rng) {
  assert(f <= k);
  assert(horizon >= 1);
  std::vector<RobotId> ids(k);
  std::iota(ids.begin(), ids.end(), RobotId{1});
  rng.shuffle(ids);
  std::vector<CrashEvent> events;
  events.reserve(f);
  for (std::size_t i = 0; i < f; ++i) {
    CrashEvent e;
    e.robot = ids[i];
    e.round = rng.below(horizon);
    e.phase = rng.chance(0.5) ? CrashPhase::kBeforeCommunicate
                              : CrashPhase::kAfterCommunicate;
    events.push_back(e);
  }
  return FaultSchedule(std::move(events));
}

std::vector<RobotId> FaultSchedule::crashes_at(Round round,
                                               CrashPhase phase) const {
  std::vector<RobotId> out;
  auto [lo, hi] = by_round_.equal_range(round);
  for (auto it = lo; it != hi; ++it)
    if (it->second.phase == phase) out.push_back(it->second.robot);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dyndisp
