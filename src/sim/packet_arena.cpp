#include "sim/packet_arena.h"

namespace dyndisp {

bool operator==(const NeighborView& a, const NeighborView& b) {
  if (a.port() != b.port() || a.min_robot() != b.min_robot() ||
      a.count() != b.count() || a.robot_count() != b.robot_count())
    return false;
  const RobotId* ra = a.robots();
  const RobotId* rb = b.robots();
  for (std::size_t i = 0, end = a.robot_count(); i < end; ++i)
    if (ra[i] != rb[i]) return false;
  return true;
}

bool operator==(const PacketView& a, const PacketView& b) {
  if (a.sender() != b.sender() || a.count() != b.count() ||
      a.degree() != b.degree() || a.robot_count() != b.robot_count() ||
      a.neighbor_count() != b.neighbor_count())
    return false;
  const RobotId* ra = a.robots();
  const RobotId* rb = b.robots();
  for (std::size_t i = 0, end = a.robot_count(); i < end; ++i)
    if (ra[i] != rb[i]) return false;
  for (std::size_t i = 0, end = a.neighbor_count(); i < end; ++i)
    if (!(a.neighbor(i) == b.neighbor(i))) return false;
  return true;
}

bool operator==(const PacketSet& a, const PacketSet& b) {
  if (a.identity() != nullptr && a.identity() == b.identity()) return true;
  const std::size_t size = a.size();
  if (size != b.size()) return false;
  for (std::size_t i = 0; i < size; ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value;
  h *= kFnvPrime;
}

}  // namespace

std::uint64_t packet_set_digest(const PacketSet& packets) {
  std::uint64_t h = kFnvOffset;
  mix(h, packets.size());
  for (std::size_t i = 0, size = packets.size(); i < size; ++i) {
    const PacketView pkt = packets[i];
    mix(h, pkt.sender());
    mix(h, pkt.count());
    mix(h, pkt.degree());
    for (std::size_t r = 0, end = pkt.robot_count(); r < end; ++r)
      mix(h, pkt.robot(r));
    mix(h, pkt.neighbor_count());
    for (std::size_t nb = 0, end = pkt.neighbor_count(); nb < end; ++nb) {
      const NeighborView v = pkt.neighbor(nb);
      mix(h, v.port());
      mix(h, v.min_robot());
      mix(h, v.count());
      for (std::size_t r = 0, rend = v.robot_count(); r < rend; ++r)
        mix(h, v.robot(r));
    }
  }
  return h;
}

}  // namespace dyndisp
