// The synchronous simulation engine: drives Communicate-Compute-Move rounds
// over an adversary-controlled 1-interval connected dynamic graph until the
// configuration is dispersed (or a round budget runs out).
//
// Round r (Section II + Section VII):
//   0. robots scheduled to crash *before* Communicate vanish;
//   1. the adversary emits G_r (trap adversaries may first dry-run the
//      robots through the installed plan probe);
//   2. Communicate: packets are assembled per the communication model and
//      1-neighborhood switch, and every alive robot observes its view;
//   3. Compute: each alive robot's step() returns an exit port;
//   4. robots scheduled to crash *after* Communicate vanish (they computed,
//      and other robots planned around them, but they do not move);
//   5. Move: remaining moves are applied simultaneously; persistent memory
//      is metered.
// Dispersion is detected between rounds (global communication makes this
// detectable by the robots themselves; for local algorithms the engine's
// check is an external oracle that merely stops the clock).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "robots/configuration.h"
#include "sim/algorithm.h"
#include "sim/byzantine.h"
#include "sim/fault.h"
#include "sim/memory_meter.h"
#include "sim/round_context.h"
#include "sim/sensing.h"
#include "sim/trace.h"
#include "util/contract.h"
#include "util/rng.h"
#include "util/types.h"

namespace dyndisp {

class ThreadPool;

/// Robot activation models. The paper is synchronous (every robot executes
/// every CCM round); kRandomSubset is the semi-synchronous exploration the
/// paper names as future work -- each round every alive robot is activated
/// independently with a fixed probability (at least one robot is always
/// activated so no round is entirely empty). Inactive robots neither
/// compute nor move, but they remain physically present: they are sensed,
/// counted, and their node still broadcasts its packet.
enum class Activation {
  kSynchronous,
  kRandomSubset,
  /// Exactly one alive robot is activated per round, cycling by ID -- the
  /// sequential scheduler, the harshest classical weakening of synchrony
  /// (every async execution is a sequence of single activations).
  kRoundRobin,
};

/// Everything an in-engine invariant oracle may inspect about one executed
/// round, assembled after the Move phase and before the round's artifacts
/// are recycled. All references are valid only during the checker call.
struct RoundSnapshot {
  Round round = 0;
  const Graph& graph;           ///< G_r as emitted by the adversary.
  const Configuration& before;  ///< Configuration at the start of the round.
  const Configuration& after;   ///< Configuration after the Move phase.
  const MovePlan& plan;         ///< Exit ports chosen (id-1 indexed).
  /// Nodes occupied this round that had never been occupied before.
  std::size_t newly_occupied = 0;
  bool crashed_this_round = false;
  /// Peak metered persistent memory over the run so far, in bits.
  std::size_t max_memory_bits = 0;
};

/// Raised by the engine when a per-round invariant fails: either its own
/// round-graph validation (oracle "round-graph") or a user-installed
/// invariant_checker. Derives std::runtime_error so existing catch sites
/// keep working; carries the round and the oracle name so a fuzzer can
/// shrink toward the exact violation it first observed.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(Round round, std::string oracle, const std::string& what)
      : std::runtime_error(what), round_(round), oracle_(std::move(oracle)) {}

  Round round() const { return round_; }
  const std::string& oracle() const { return oracle_; }

 private:
  Round round_;
  std::string oracle_;
};

/// Per-round invariant hook: inspect the snapshot and throw
/// InvariantViolation to abort the run at the offending round. Returning
/// normally means the round passed.
using InvariantChecker = std::function<void(const RoundSnapshot&)>;

struct EngineOptions {
  CommModel comm = CommModel::kGlobal;
  bool neighborhood_knowledge = true;
  Activation activation = Activation::kSynchronous;
  /// Per-robot, per-round activation probability under kRandomSubset.
  double activation_probability = 1.0;
  std::uint64_t activation_seed = 1;
  /// Hard stop; impossibility benches use this as the containment horizon.
  Round max_rounds = 100000;
  /// Validate every adversary-emitted graph (connectivity, ports, |V|).
  bool validate_graphs = true;
  /// Delta-aware round loop (docs/PERFORMANCE.md): skip next_graph when the
  /// adversary promises an unchanged graph (same_as_last), skip re-validating
  /// a graph already validated, reuse or delta-assemble the packet broadcast
  /// across rounds, and hand robots valid ReuseHints so plan layers can
  /// memoize Algorithm 1-3 structures across rounds (StructureCache). Every
  /// reuse path is bitwise identical to the rebuilt path (the differential
  /// suite proves it); disabling this reproduces the seed engine's behavior
  /// call-for-call, which is what --no-structure-cache exposes.
  bool structure_cache = true;
  /// Struct-of-arrays round loop (docs/PERFORMANCE.md): views are filled
  /// in place into a persistent per-robot arena instead of constructed
  /// fresh each round, fields no robot's declared ViewNeeds covers are
  /// skipped (per-node state lists, co-located and per-neighbor robot
  /// lists), the full start-of-round Configuration copy is elided when
  /// nothing observes it (no invariant checker, no trace), and robot
  /// serialization reuses one BitWriter. Every skip is bitwise identical
  /// to the assembled path (the SoA differential suite proves it);
  /// disabling this reproduces the per-round-allocating layout, which is
  /// what --no-soa exposes for differential proofs.
  bool soa = true;
  /// Flat packet broadcast (docs/PERFORMANCE.md): the per-round packet set
  /// is assembled into a persistent CSR PacketArena (one header table, one
  /// neighbor table, one RobotId pool) pooled and refilled in place across
  /// rounds, instead of a fresh std::vector<InfoPacket> whose per-packet
  /// robot lists dominated the allocation count at k >= 10^5. Every
  /// consumer reads packets through PacketView, so the logical records,
  /// canonical order, wire-bit metering, and run digests are bitwise
  /// identical either way (the packet differential suite proves it);
  /// disabling reproduces the per-round-allocating layout, which is what
  /// --no-flat-packets exposes for differential proofs.
  bool flat_packets = true;
  /// Incremental component-forest planning (docs/PERFORMANCE.md): the round
  /// loop stamps every round's ReuseHints with the observed graph-change
  /// class (GraphChange), and the plan layer routes full-churn rounds
  /// straight to the stateless planner instead of consulting -- and
  /// retaining a round's packet storage into -- the StructureCache, which
  /// could only ever miss on such rounds. kSame/kSmallDelta rounds keep the
  /// cache's exact-hit and sender-wise delta machinery. Plans are bitwise
  /// identical either way (StructureCache::full_build IS the stateless
  /// planner's computation; the incremental differential leg proves it);
  /// disabling stamps every round kFullChurn, reproducing the re-plan-
  /// everything engine for differential proofs. No effect when
  /// structure_cache is off (hints are invalid then).
  bool incremental_planning = true;
  /// Record a full per-round trace (heavy).
  bool record_trace = false;
  /// Record per-round heap-allocation counts into
  /// RunResult::allocs_per_round, windowed so the recording itself never
  /// lands inside a measured round. Counts are real only in binaries that
  /// install the util/memprobe.h operator-new hook
  /// (DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW); elsewhere every entry is 0.
  /// This is the runtime twin of the hotpath-alloc lint rule: the
  /// steady-state zero-allocation test pins warmed-up arena/SoA rounds
  /// to exactly 0 through this option.
  bool alloc_probe = false;
  /// Record per-round occupied counts (cheap) for progress plots.
  bool record_progress = false;
  /// Allow running an algorithm whose declared requirements exceed what the
  /// options provide (used deliberately by the impossibility experiments).
  bool allow_model_mismatch = false;
  /// Byzantine liars (future-work exploration): tampers the packet layer
  /// and/or overrides the liars' moves. Null = all robots honest.
  std::shared_ptr<const ByzantineModel> byzantine;
  /// Per-round invariant oracle (src/check wires the lemma oracles through
  /// this). Called after every executed round's Move phase; throws
  /// InvariantViolation to stop the run at the offending round. Null = off.
  InvariantChecker invariant_checker;
  /// Wire-format observer: called once per executed global-communication
  /// round, right after the round's broadcast is published (post-tamper --
  /// it sees exactly what the robots receive), with the round number, the
  /// packet count, the metered wire bits, and the order-sensitive
  /// packet_set_digest of the full broadcast. The golden packet-trace
  /// fixtures replay runs through this hook; it observes, never mutates,
  /// and is backend-independent by construction. Null = off.
  std::function<void(Round, std::size_t, std::size_t, std::uint64_t)>
      packet_observer;
  /// Compute-phase fan-out: packet assembly, view assembly, and step() calls
  /// are spread over this many threads (1 = fully serial, no pool). Results
  /// are bitwise identical at any value: robots only read the round's shared
  /// artifacts and mutate their own state, and every parallel loop writes to
  /// index-owned slots under a static partition.
  std::size_t threads = 1;
};

/// Delta-aware round-loop effectiveness, counted (not estimated) per run.
/// Observability only: these fields are deliberately excluded from run
/// digests (check/trial.cpp) and campaign records, so toggling
/// EngineOptions::structure_cache can never change a correctness-compared
/// output -- the differential suite relies on exactly that. The exclusion
/// is machine-checked: the DYNDISP_STATS tag makes any read of these
/// fields inside a digest/serialize function a digest-exclusion finding.
struct DYNDISP_STATS RoundLoopStats {
  std::size_t same_graph_rounds = 0;    ///< Rounds where G_r == G_{r-1}.
  std::size_t graph_reuses = 0;         ///< next_graph calls skipped (hint).
  std::size_t validations_skipped = 0;  ///< Re-validations of an unchanged graph skipped.
  std::size_t broadcasts_reused = 0;    ///< Previous broadcast republished by handle.
  std::size_t broadcast_deltas = 0;     ///< Broadcasts delta-assembled.
  std::size_t packets_copied = 0;       ///< Packets copied on delta rounds.
  std::size_t packets_rebuilt = 0;      ///< Packets rebuilt on delta rounds.
  std::size_t state_handles_reused = 0; ///< Unchanged serialized states kept by handle.
  std::size_t node_state_lists_reused = 0;  ///< Per-node state lists kept by handle.
  std::size_t scratch_reuses = 0;       ///< Round buffers refilled in place.
  /// SoA round-loop counters (EngineOptions::soa; observability only, like
  /// everything in this struct).
  std::size_t soa_rounds = 0;           ///< Rounds run through the arena path.
  std::size_t arena_views = 0;          ///< Views filled into arena slots.
  /// Flat-packet (PacketArena) counter: global-communication rounds whose
  /// broadcast was published arena-backed (EngineOptions::flat_packets).
  std::size_t flat_rounds = 0;
  std::size_t state_list_rounds_skipped = 0;  ///< begin_round state-list builds skipped (ViewNeeds).
  std::size_t before_copies_skipped = 0;      ///< Start-of-round Configuration copies elided.
  std::size_t occupancy_words = 0;      ///< Words per occupancy bitset (ceil(n/64)).
  /// StructureCache (planner-layer) counters: per-run deltas of the
  /// process-wide totals. Exact when one run executes at a time; advisory
  /// under concurrent runs (campaign mode does not record them).
  std::uint64_t sc_exact_hits = 0;
  std::uint64_t sc_delta_rounds = 0;
  std::uint64_t sc_full_builds = 0;
  std::uint64_t sc_components_reused = 0;
  std::uint64_t sc_components_rebuilt = 0;
  std::uint64_t sc_evictions = 0;
  /// Per-phase wall-time buckets, milliseconds summed over every executed
  /// round (util/phase_clock.h; observability only, digest-excluded like
  /// everything here). graph_build covers the adversary's next_graph plus
  /// round-graph validation; broadcast covers packet assembly/reuse/delta;
  /// plan is the planner-side share of the compute phase (PlanCache miss
  /// work: Algorithm 1-3 structures + Algorithm 4 plan derivation,
  /// process-wide accumulator deltas); compute is the compute phase's
  /// remainder (view assembly + robot steps); move covers the Move phase
  /// and end-of-round state refresh/metering.
  double phase_graph_build_ms = 0;
  double phase_broadcast_ms = 0;
  double phase_plan_ms = 0;
  double phase_compute_ms = 0;
  double phase_move_ms = 0;
};

struct RunResult {
  bool dispersed = false;
  Round rounds = 0;                 ///< Rounds executed until dispersion/stop.
  std::size_t k = 0;                ///< Robots at the start.
  std::size_t initial_occupied = 0; ///< Distinct occupied nodes in Conf_0.
  std::size_t crashed = 0;          ///< Robots that crashed during the run.
  std::size_t total_moves = 0;      ///< Edge traversals performed.
  std::size_t max_memory_bits = 0;  ///< Peak persistent state, any robot.
  std::size_t packets_sent = 0;     ///< Info packets broadcast (global comm).
  std::size_t packet_bits_sent = 0; ///< Total wire bits of those packets.
  /// Rounds in which no previously-unoccupied node was newly occupied while
  /// a multiplicity node existed (Lemma 7 says 0 for Algorithm 4).
  std::size_t stalled_rounds = 0;
  /// Max occupied-node count ever reached (impossibility containment).
  std::size_t max_occupied = 0;
  /// Nodes visited (occupied at least once) over the whole run -- the
  /// exploration metric of the paper's related problem ("a solution to
  /// exploration is enough to solve DISPERSION but the reverse may not be
  /// true": dispersion can finish with explored_nodes < n when k < n).
  std::size_t explored_nodes = 0;
  /// First round after which every node had been visited; kNeverExplored
  /// when exploration did not complete within the run.
  static constexpr Round kNeverExplored = static_cast<Round>(-1);
  Round exploration_round = kNeverExplored;
  Configuration final_config;
  std::vector<std::size_t> occupied_per_round;  ///< If record_progress.
  /// Heap allocations per executed round (if alloc_probe; see the option
  /// for the hook caveat). Observability only, like stats.
  std::vector<std::uint64_t> allocs_per_round;
  Trace trace;                                  ///< If record_trace.
  RoundLoopStats stats;  ///< Reuse counters; excluded from digests/records.
};

class Engine {
 public:
  /// `initial.robot_count()` robots are instantiated through `factory`.
  Engine(Adversary& adversary, Configuration initial,
         const AlgorithmFactory& factory, EngineOptions options,
         FaultSchedule faults = FaultSchedule::none());

  ~Engine();  // out of line: ThreadPool is forward-declared here

  /// Runs to dispersion or the round budget; returns the collected result.
  RunResult run();

  /// Name of the algorithm under simulation (from robot 1's instance).
  std::string algorithm_name() const;

 private:
  Adversary& adversary_;
  Configuration conf_;
  EngineOptions options_;
  FaultSchedule faults_;
  std::vector<std::unique_ptr<RobotAlgorithm>> robots_;  // index id-1
  /// Non-owning view of robots_, built once: the compute phase hands
  /// plan_on a raw-pointer span every round, and rebuilding the vector per
  /// round was a per-round allocation (probes still build their own from
  /// clones).
  std::vector<RobotAlgorithm*> raw_robots_;
  MemoryMeter meter_;
  Round probe_round_ = 0;  ///< Round whose graph the adversary is building.

  /// Port through which each robot entered its current node (id-1 indexed).
  std::vector<Port> arrival_ports_;

  /// Activation mask for the round being executed (id-1 indexed); shared
  /// with plan probes so the adversary sees the true schedule.
  std::vector<bool> active_;
  Rng activation_rng_{1};
  std::size_t round_robin_cursor_ = 0;  ///< Last activated ID (kRoundRobin).

  /// Each robot's serialized start-of-round state (id-1 indexed), refreshed
  /// at the end of every round a robot steps in. Shared zero-copy with the
  /// round's views through the RoundContext, and metered directly -- the
  /// one serialization per robot per round the simulation performs.
  std::vector<StateHandle> states_;
  std::vector<std::size_t> state_bits_;  ///< Bit counts of states_ entries.
  BitWriter state_writer_;  ///< Reused serialization sink (refresh_state).

  /// SoA round loop (options_.soa): the field-wise OR of every robot's
  /// declared ViewNeeds, and the persistent per-robot view arena plan_on
  /// fills in place (mutable: plan probes are const and share it -- probes
  /// and the real compute phase run strictly sequentially).
  ViewNeeds needs_;
  mutable std::vector<RobotView> views_arena_;

  /// Compute-phase pool (null when options_.threads <= 1).
  std::unique_ptr<ThreadPool> pool_;

  /// The executing round's shared artifacts; set by run() before the
  /// adversary (and its plan probes) are consulted.
  const RoundContext* round_ctx_ = nullptr;

  /// Round-loop persistence (delta-aware loop). ctx_ lives across rounds so
  /// its buffers are reused; graph_ holds G_{r-1} for same-graph detection
  /// and deltas; graph_validated_/validated_fp_ remember whether graph_
  /// already passed validate_round_graph.
  RoundContext ctx_;
  Graph graph_;
  /// Double buffer for adversary emission: next_graph_into fills this (the
  /// round-before-last's graph, whose row capacities regenerating
  /// adversaries recycle) and a swap promotes it to graph_.
  Graph scratch_graph_;
  bool have_graph_ = false;
  bool graph_validated_ = false;
  std::uint64_t validated_fp_ = 0;
  /// This round's graph-vs-last-round classification, stamped into the
  /// REAL round's hints (probes stay kUnknown: a candidate graph has no
  /// cross-round relation).
  GraphChange round_change_ = GraphChange::kUnknown;
  Graph::Delta graph_delta_;         ///< Scratch: G_r vs G_{r-1}.
  std::vector<NodeId> dirty_nodes_;  ///< Scratch: delta-assembly dirty set.
  MovePlan plan_buf_;                ///< Retained compute-phase plan buffer.
  std::size_t state_handles_reused_ = 0;  ///< refresh_state byte-equal keeps.

  /// Dry-runs all alive robots' compute phases on a candidate graph,
  /// reusing the current round's context (state snapshots, node index).
  MovePlan probe_plan(const Graph& candidate) const;

  /// Runs the real compute phase on `g`, mutating robot state. Returns
  /// the retained plan_buf_ (refilled in place each round; valid until the
  /// next compute_plan call).
  MovePlan& compute_plan(const Graph& g, Round round, const RoundContext& ctx);

  /// Views are assembled for ALL robots first (so state exchange reflects
  /// the synchronous start-of-round snapshot), then every robot steps.
  /// `packets` is the (possibly candidate) broadcast for `g`; shared round
  /// artifacts come from `ctx`; `hints` ride into every view (invalid hints
  /// when the broadcast is not a pure function of (g, conf, model)).
  /// When `view_arena` is non-null (SoA loop) views are filled in place
  /// into its slots under `needs` gating; null runs the per-round
  /// allocating layout with full views.
  /// `plan` is an out-parameter refilled via assign() so the round loop's
  /// retained buffer never reallocates in steady state.
  static void plan_on(const Graph& g, const Configuration& conf,
                      Round round, const EngineOptions& options,
                      const std::vector<Port>& arrival_ports,
                      const std::vector<bool>& active,
                      const std::vector<RobotAlgorithm*>& robots,
                      const RoundContext& ctx, PacketSet packets,
                      const ReuseHints& hints, ThreadPool* pool,
                      std::vector<RobotView>* view_arena,
                      const ViewNeeds& needs, MovePlan& plan);

  /// Hints describing the broadcast for graph `g` this round; valid only
  /// when the structure-cache loop is on, communication is global, and no
  /// Byzantine model tampers packets.
  ReuseHints make_hints(const Graph& g) const;

  /// Re-serializes robot `id`'s persistent state into states_.
  void refresh_state(RobotId id);

  /// Draws the activation mask for one round per options_.activation.
  void draw_activation();
};

}  // namespace dyndisp
