// The robot-algorithm interface: one instance per robot, driven by the
// engine through synchronous Communicate-Compute-Move rounds.
//
// Contract (mirrors Section II):
//   * step() receives the robot's view for the round and returns the exit
//     port (kInvalidPort to stay). All computation inside step() is the
//     round's free "temporary memory".
//   * State kept on the object across step() calls is the robot's persistent
//     memory; serialize() must write ALL of it so the engine can meter the
//     bit count (Lemma 8 audits Theta(log k)).
//   * step() must be deterministic: trap adversaries dry-run clones of the
//     robots (via clone()) to predict moves, exactly as the paper's
//     adversary "knows the algorithm and the states until round r-1".
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/sensing.h"
#include "util/bits.h"
#include "util/types.h"

namespace dyndisp {

class RobotAlgorithm {
 public:
  virtual ~RobotAlgorithm() = default;

  /// Deep copy including all persistent state (used by plan probes).
  virtual std::unique_ptr<RobotAlgorithm> clone() const = 0;

  /// Compute phase: decide the exit port for this round (kInvalidPort: stay).
  virtual Port step(const RobotView& view) = 0;

  /// Serializes the persistent (between-round) state for memory metering.
  virtual void serialize(BitWriter& out) const = 0;

  virtual std::string name() const = 0;

  /// Model requirements; the engine rejects mismatched configurations unless
  /// explicitly asked to run an algorithm outside its comfort zone (that is
  /// exactly what the impossibility benches do).
  virtual bool requires_global_comm() const = 0;
  virtual bool requires_neighborhood() const = 0;

  /// Which optional RobotView fields step() reads (see ViewNeeds). The
  /// engine's struct-of-arrays round loop skips assembling fields that no
  /// robot of the run declares; an algorithm overriding this promises its
  /// step() never reads a disclaimed field. The all-true default keeps
  /// every unported algorithm on full views.
  virtual ViewNeeds view_needs() const { return ViewNeeds{}; }
};

/// Creates the algorithm instance for robot `id` out of `k` robots.
using AlgorithmFactory =
    std::function<std::unique_ptr<RobotAlgorithm>(RobotId id, std::size_t k)>;

}  // namespace dyndisp
