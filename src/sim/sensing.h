// Sensing: assembles exactly what the model lets each robot observe.
//
// The combination of the two switches reproduces the paper's four model
// rows (Table I):
//   * CommModel::Local  + neighborhood  -> Theorem 1 setting (impossible)
//   * CommModel::Global + !neighborhood -> Theorem 2 setting (impossible)
//   * CommModel::Global + neighborhood  -> Algorithm 4 setting (Theta(k))
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/info_packet.h"
#include "sim/packet_arena.h"
#include "sim/reuse_hints.h"
#include "util/types.h"

namespace dyndisp {

class ThreadPool;

enum class CommModel {
  kLocal,   ///< A robot talks only to robots on its own node.
  kGlobal,  ///< A robot talks to every robot in the graph.
};

/// Reference-counted handle to one robot's serialized persistent state.
/// Serialized once per robot per round and shared by every view that carries
/// it; copying the byte vector per view would make crowded rounds Theta(k^2)
/// in state volume.
using StateHandle = std::shared_ptr<const std::vector<std::uint8_t>>;

/// Everything one robot observes in the Communicate phase of one round.
struct RobotView {
  RobotId self = kNoRobot;
  Round round = 0;
  std::size_t k = 0;              ///< Total number of robots (IDs in [1,k]).
  std::size_t degree = 0;         ///< Degree of the robot's node in G_r.
  std::size_t node_count = 0;     ///< Robots on the robot's node.
  std::vector<RobotId> colocated; ///< Alive robots here (incl. self), ascending.
  /// Port of the CURRENT node through which this robot entered when it last
  /// moved (Section II: "it is aware of ... the port of v it used to enter
  /// v"); kInvalidPort if the robot has not moved yet or stayed last round.
  /// Meaningful for static-graph algorithms; on dynamic graphs the edge may
  /// no longer exist.
  Port arrival_port = kInvalidPort;
  /// Serialized persistent states of the co-located robots, ascending by
  /// robot ID (parallel to `colocated`), as at the START of the round.
  /// Local communication lets same-node robots exchange arbitrary state;
  /// the DFS baselines read the settled robot's parent/rotor through this.
  /// The list is assembled once per occupied node and shared by every robot
  /// standing there (a zero-copy handle, like `shared_packets`); null when
  /// the engine has no states to exchange (bare make_view results).
  std::shared_ptr<const std::vector<StateHandle>> colocated_states;

  /// The serialized state of the i-th co-located robot (`colocated[i]`).
  const std::vector<std::uint8_t>& colocated_state(std::size_t i) const {
    return *(*colocated_states)[i];
  }

  bool neighborhood_knowledge = false;
  /// Occupied neighbors of the robot's own node, port-ascending.
  /// Populated only when neighborhood_knowledge is true.
  std::vector<NeighborInfo> occupied_neighbors;
  /// Number of empty (unoccupied) neighbors of the robot's own node.
  /// Populated only when neighborhood_knowledge is true.
  std::size_t empty_neighbor_count = 0;
  /// Ports of the robot's node leading to empty neighbors, ascending.
  std::vector<Port> empty_ports;

  bool global_comm = false;
  /// All packets in the system, ascending by sender ID (one per occupied
  /// node); truthy only when global_comm is true. Shared across the
  /// round's views (k robots receive the same broadcast; copying it per
  /// robot would make every round Theta(k^2) in packet volume). Carried by
  /// either backend -- the flat PacketArena (EngineOptions::flat_packets)
  /// or the legacy InfoPacket vector -- behind the same PacketView API.
  PacketSet shared_packets;

  /// Cross-round reuse hints for the shared packet set (filled by the
  /// engine, like arrival_port; invalid in bare make_view results). Caching
  /// algorithm layers key cross-round structure reuse on these; the default
  /// invalid hints always take the uncached path.
  ReuseHints reuse;

  /// The packet set (empty when local communication is in effect).
  const PacketSet& packets() const { return shared_packets; }
};

/// Per-round index: node -> alive robot IDs there, ascending. Building it
/// once per round turns the O(k) Configuration::robots_at scans inside
/// packet/view assembly into O(1) lookups.
using NodeRobots = std::vector<std::vector<RobotId>>;
NodeRobots robots_by_node(const Configuration& conf);

/// CSR (compressed sparse row) node -> alive-robots index: all robot IDs in
/// one contiguous array, per-node segments addressed by an offsets table.
/// Same content as robots_by_node, but two allocations total instead of one
/// vector per node, rebuilt in place by a counting sort -- allocation-free
/// in steady state. This is the engine round loop's index (the NodeRobots
/// form remains for tests and one-shot callers).
class NodeIndex {
 public:
  /// Rebuilds the index for `conf` (counting sort over alive robots; robot
  /// IDs ascend within each node's segment). Reuses retained buffers.
  void build(const Configuration& conf);

  std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Alive robots on node v, ascending: [begin(v), end(v)).
  const RobotId* begin(NodeId v) const { return ids_.data() + offsets_[v]; }
  const RobotId* end(NodeId v) const { return ids_.data() + offsets_[v + 1]; }
  std::size_t count(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  bool empty(NodeId v) const { return count(v) == 0; }
  /// Total alive robots indexed.
  std::size_t total() const { return ids_.size(); }

 private:
  std::vector<std::uint32_t> offsets_;  // n + 1
  std::vector<RobotId> ids_;            // all alive robots, node-major
  std::vector<std::uint32_t> cursor_;   // build scratch
};

/// Which optional RobotView fields an algorithm's step() actually reads.
/// The engine's struct-of-arrays round loop (EngineOptions::soa) skips
/// assembling fields no robot of the run declared -- skipping is observable
/// only to a step() that reads a field its algorithm disclaimed, so results
/// are unchanged by construction (and pinned by the SoA-vs-legacy
/// differential suite). The all-true default keeps unported algorithms on
/// full views.
struct ViewNeeds {
  bool colocated = true;           ///< RobotView::colocated IDs.
  bool colocated_states = true;    ///< Exchanged per-node state lists.
  bool occupied_neighbors = true;  ///< Per-neighbor robot lists.
  bool empty_ports = true;         ///< Ports toward empty neighbors.

  /// Field-wise OR (the engine aggregates over all robots of a run).
  void merge(const ViewNeeds& o) {
    colocated |= o.colocated;
    colocated_states |= o.colocated_states;
    occupied_neighbors |= o.occupied_neighbors;
    empty_ports |= o.empty_ports;
  }
};

/// Builds the packet broadcast by the (robots on the) node `v`.
/// `with_neighborhood` controls whether neighbor information is included.
/// `index` (optional) is a robots_by_node() result for this configuration.
InfoPacket make_packet(const Graph& g, const Configuration& conf, NodeId v,
                       bool with_neighborhood,
                       const NodeRobots* index = nullptr);

/// CSR-index overload; identical output.
InfoPacket make_packet(const Graph& g, const Configuration& conf, NodeId v,
                       bool with_neighborhood, const NodeIndex& index);

/// Builds all packets (one per occupied node), ascending by sender.
std::vector<InfoPacket> make_all_packets(const Graph& g,
                                         const Configuration& conf,
                                         bool with_neighborhood,
                                         const NodeRobots* index = nullptr);

/// Single-pass broadcast assembly: builds all packets AND meters their total
/// wire size in the same traversal (when `wire_bits` is non-null), fanning
/// per-node packet construction across `pool` when one is supplied. Output
/// is identical to make_all_packets at any thread count: packets are built
/// into sender-unique slots and canonically re-sorted by sender ID.
/// When `bits_each` / `nodes_each` are non-null they receive each packet's
/// wire bits / sender node, aligned to the returned (sorted) packet order --
/// the per-packet ledger delta reassembly copies from.
std::vector<InfoPacket> make_all_packets_metered(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const NodeRobots& index, std::size_t* wire_bits, ThreadPool* pool = nullptr,
    std::vector<std::size_t>* bits_each = nullptr,
    std::vector<NodeId>* nodes_each = nullptr);

/// CSR-index overload; identical output (the engine round loop's path).
std::vector<InfoPacket> make_all_packets_metered(
    const Graph& g, const Configuration& conf, bool with_neighborhood,
    const NodeIndex& index, std::size_t* wire_bits, ThreadPool* pool = nullptr,
    std::vector<std::size_t>* bits_each = nullptr,
    std::vector<NodeId>* nodes_each = nullptr);

/// Process-wide count of FULL broadcast assemblies (make_all_packets and
/// make_all_packets_metered calls). Test hook: the engine assembles the
/// broadcast at most once per executed round. With the delta-aware round
/// loop enabled (EngineOptions::structure_cache), reuse and delta rounds do
/// not count as assemblies -- tests pinning assemblies == rounds must run
/// with structure_cache off.
std::size_t packet_assembly_count();

/// Wire size of one packet in bits, for the communication-cost metric:
/// robot IDs and counts cost ceil(log2(k+1)) bits, ports and degrees
/// ceil(log2(n)) bits (n = node count bounds both). The robot-ID lists are
/// counted in full, matching the paper's "full information" packets. The
/// formula reads the logical record only, so both backends meter alike.
std::size_t packet_bit_size(const PacketView& packet, std::size_t k,
                            std::size_t n);

/// Legacy-struct overload; identical result.
inline std::size_t packet_bit_size(const InfoPacket& packet, std::size_t k,
                                   std::size_t n) {
  return packet_bit_size(PacketView(packet), k, n);
}

/// Flat-backend twin of make_all_packets_metered: assembles the whole
/// broadcast into `arena` (cleared and refilled in place -- allocation-free
/// once its arrays have grown to steady state), headers sorted by sender,
/// each packet's pool slice contiguous. Metering, ledgers, the
/// packet-assembly counter, and thread-count independence behave exactly as
/// in the vector path; the logical records are identical field for field.
void assemble_arena_metered(PacketArena& arena, const Graph& g,
                            const Configuration& conf, bool with_neighborhood,
                            const NodeIndex& index, std::size_t* wire_bits,
                            ThreadPool* pool = nullptr,
                            std::vector<std::size_t>* bits_each = nullptr,
                            std::vector<NodeId>* nodes_each = nullptr);

/// Assembles the view of robot `id` standing on its node in `g`. The packet
/// set is attached by reference-counted handle (shared across all robots of
/// the round); either backend works. Arrival ports and co-located states
/// are filled in by the engine, which owns that information.
RobotView make_view(const Graph& g, const Configuration& conf, RobotId id,
                    Round round, CommModel comm, bool neighborhood,
                    PacketSet packets, const NodeRobots* index = nullptr);

/// CSR-index overload; identical output.
RobotView make_view(const Graph& g, const Configuration& conf, RobotId id,
                    Round round, CommModel comm, bool neighborhood,
                    PacketSet packets, const NodeIndex& index);

/// In-place view assembly for the engine's persistent view arena: fills
/// `out` with exactly what make_view would produce for the fields `needs`
/// declares (plus the unconditional scalars: self, round, k, degree,
/// node_count, empty_neighbor_count, global_comm, shared_packets), reusing
/// `out`'s vector capacities across rounds. Undeclared fields are left
/// cleared. arrival_port, colocated_states, and reuse are reset for the
/// engine to fill, as in make_view.
void fill_view(RobotView& out, const Graph& g, const Configuration& conf,
               RobotId id, Round round, CommModel comm, bool neighborhood,
               const PacketSet& packets, const NodeIndex& index,
               const ViewNeeds& needs);

/// Convenience overload copying a plain packet vector (tests/examples).
inline RobotView make_view(const Graph& g, const Configuration& conf,
                           RobotId id, Round round, CommModel comm,
                           bool neighborhood,
                           const std::vector<InfoPacket>& packets) {
  return make_view(g, conf, id, round, comm, neighborhood,
                   std::make_shared<const std::vector<InfoPacket>>(packets));
}

}  // namespace dyndisp
