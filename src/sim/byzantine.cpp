#include "sim/byzantine.h"

#include <utility>

#include "util/contract.h"

namespace dyndisp {

ByzantineModel::ByzantineModel(std::set<RobotId> liars, ByzantineLie lie)
    : liars_(std::move(liars)), lie_(lie) {}

std::string ByzantineModel::lie_name() const {
  switch (lie_) {
    case ByzantineLie::kHideMultiplicity:
      return "hide-multiplicity";
    case ByzantineLie::kHideEmptyNeighbors:
      return "hide-empty-neighbors";
    case ByzantineLie::kErraticMoves:
      return "erratic-moves";
  }
  return "byzantine";
}

DYNDISP_COLD
void ByzantineModel::tamper(std::vector<InfoPacket>& packets) const {
  if (lie_ == ByzantineLie::kErraticMoves) return;  // movement-only attack
  for (InfoPacket& pkt : packets) {
    if (!liars_.count(pkt.sender)) continue;
    switch (lie_) {
      case ByzantineLie::kHideMultiplicity:
        // "I am alone here." The sensed neighbor info in OTHER packets
        // stays truthful (sensing cannot be faked); Algorithm 4 only reads
        // counts from the packets, so the lie lands.
        pkt.count = 1;
        pkt.robots = {pkt.sender};
        break;
      case ByzantineLie::kHideEmptyNeighbors:
        // "All my neighbors are occupied." LeafNodeSet membership is
        // degree > |occupied neighbors|, evaluated from the packet.
        pkt.degree = pkt.occupied_neighbors.size();
        break;
      case ByzantineLie::kErraticMoves:
        break;
    }
  }
}

DYNDISP_COLD
void ByzantineModel::tamper(PacketArena& packets) const {
  if (lie_ == ByzantineLie::kErraticMoves) return;  // movement-only attack
  for (ArenaPacket& pkt : packets.headers) {
    if (!liars_.count(pkt.sender)) continue;
    switch (lie_) {
      case ByzantineLie::kHideMultiplicity:
        // pool[robots_begin] == sender already (lists ascend, sender is the
        // minimum), so truncating the range IS the {sender} singleton.
        pkt.count = 1;
        pkt.robots_count = 1;
        break;
      case ByzantineLie::kHideEmptyNeighbors:
        pkt.degree = pkt.nb_count;
        break;
      case ByzantineLie::kErraticMoves:
        break;
    }
  }
}

Port ByzantineModel::override_move(RobotId id, Port planned,
                                   std::size_t degree, Round round) const {
  if (lie_ != ByzantineLie::kErraticMoves || !liars_.count(id) || degree == 0)
    return planned;
  const std::uint64_t h =
      (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ULL) ^
      ((round + 1) * 0xD1B54A32D192ED03ULL);
  return static_cast<Port>(h % degree + 1);
}

}  // namespace dyndisp
