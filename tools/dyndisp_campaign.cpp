// dyndisp_campaign -- declarative scenario sweeps over the whole library.
//
// Turns a JSON campaign spec (axes: algorithms x adversaries x n x k x comm
// x faults x seeds) into a scheduled, persisted, resumable sweep: trials fan
// out over a thread pool, every result is appended to a JSONL store as it
// finishes, and an interrupted campaign picks up where it left off.
//
//   dyndisp_campaign run campaigns/table1.json --threads 8
//   dyndisp_campaign run campaigns/table1.json --seeds 2     # smoke mode
//   dyndisp_campaign resume campaign_out/table1
//   dyndisp_campaign report campaign_out/table1 --csv table1.csv
//   dyndisp_campaign list
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/registry.h"
#include "campaign/scheduler.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "util/cli.h"
#include "util/json.h"

namespace {

using namespace dyndisp;
using namespace dyndisp::campaign;

constexpr const char* kUsage = R"(dyndisp_campaign -- scenario sweeps as data

commands:
  run <spec.json>      expand the spec's axes and run every trial
      --out DIR        result-store directory (default campaign_out/<name>)
      --threads N      worker lanes (default: hardware concurrency)
      --seeds S        override the spec's seeds-per-tuple (smoke mode)
      --quiet          suppress per-trial progress lines
      --no-timing      zero the per-record wall_ms field so the same
                       spec+seed yields byte-identical results.jsonl
                       (determinism regression; see scripts/check_determinism.sh)
  resume <store-dir>   finish an interrupted campaign; completed trials
                       (records already in results.jsonl) are skipped
      --threads N, --quiet, --no-timing   as for run
  report <store-dir>   aggregate the JSONL records into the tuple table
      --csv FILE       also export the aggregate as CSV
  list                 enumerate registered algorithms, adversaries,
                       families, and placements
  --help               this text

The store directory holds spec.json (the spec copy resume reads),
results.jsonl (one record per finished trial, appended and flushed as each
trial completes), and manifest.json (campaign identity plus per-invocation
executed/skipped/failed/wall-time counters).
)";

std::size_t default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

int check_unused(const CliArgs& args) {
  if (const auto unknown = args.unused(); !unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n",
                 unknown.front().c_str());
    return 2;
  }
  return 0;
}

/// Shared by run and resume once the spec and store are in hand.
int execute(const CampaignSpec& spec, ResultStore& store, std::size_t threads,
            bool quiet, bool record_timing) {
  const CampaignOutcome outcome = run_campaign(
      spec, store, threads, quiet ? nullptr : &std::cout, record_timing);
  std::printf(
      "campaign %s: %zu jobs, %zu executed, %zu skipped, %zu failed "
      "(%.1f ms, %zu threads)\n",
      spec.name().c_str(), outcome.total, outcome.executed, outcome.skipped,
      outcome.failed, outcome.wall_ms, threads);
  const auto groups = aggregate(store.load());
  std::fputs(render_report(spec.name(), groups).c_str(), stdout);
  std::printf("store: %s\n", store.dir().c_str());
  return outcome.failed == 0 ? 0 : 1;
}

int cmd_run(const std::string& spec_path, const CliArgs& args) {
  CampaignSpec spec = CampaignSpec::parse_file(spec_path);
  if (args.has("seeds"))
    spec.set_seeds(static_cast<std::size_t>(args.get_uint("seeds", 1)));
  const std::string out_dir =
      args.get("out", "campaign_out/" + spec.name());
  const std::size_t threads =
      static_cast<std::size_t>(args.get_uint("threads", default_threads()));
  const bool quiet = args.has("quiet");
  const bool record_timing = !args.has("no-timing");
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(out_dir);
  return execute(spec, store, threads, quiet, record_timing);
}

int cmd_resume(const std::string& store_dir, const CliArgs& args) {
  const std::size_t threads =
      static_cast<std::size_t>(args.get_uint("threads", default_threads()));
  const bool quiet = args.has("quiet");
  const bool record_timing = !args.has("no-timing");
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(store_dir);
  CampaignSpec spec = CampaignSpec::parse_file(store.spec_path());
  // The manifest remembers any --seeds override the original run applied,
  // so resume completes the campaign that was actually started.
  {
    std::ifstream in(store.manifest_path());
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        const JsonValue manifest = JsonValue::parse(buffer.str());
        if (const JsonValue* seeds = manifest.find("seeds"))
          spec.set_seeds(static_cast<std::size_t>(seeds->as_uint()));
      } catch (const std::invalid_argument&) {
        // Torn manifest (killed mid-write): fall back to the spec's seeds.
      }
    }
  }
  return execute(spec, store, threads, quiet, record_timing);
}

int cmd_report(const std::string& store_dir, const CliArgs& args) {
  const std::string csv_path = args.get("csv", "");
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(store_dir);
  const std::vector<TrialRecord> records = store.load();
  if (records.empty()) {
    std::fprintf(stderr, "no records in %s\n", store.results_path().c_str());
    return 1;
  }
  std::string name = store_dir;
  try {
    name = CampaignSpec::parse_file(store.spec_path()).name();
  } catch (const std::exception&) {
    // Report works on a bare results.jsonl too.
  }
  const auto groups = aggregate(records);
  std::fputs(render_report(name, groups).c_str(), stdout);
  std::size_t failed = 0;
  for (const auto& g : groups) failed += g.failed;
  const auto runs = store.run_history();
  std::printf("records: %zu   failed: %zu   scheduler invocations: %zu\n",
              records.size(), failed, runs.size());
  if (!csv_path.empty()) {
    write_report_csv(csv_path, groups);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_list() {
  const Registry& registry = Registry::instance();
  const auto print = [](const char* category,
                        const std::vector<std::string>& names) {
    std::printf("%s:\n", category);
    for (const std::string& name : names)
      std::printf("  %s\n", name.c_str());
  };
  print("algorithms", registry.algorithm_names());
  print("adversaries", registry.adversary_names());
  print("families", registry.family_names());
  print("placements", registry.placement_names());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2 || std::string(argv[1]) == "--help" ||
        std::string(argv[1]) == "help") {
      std::fputs(kUsage, stdout);
      return argc < 2 ? 2 : 0;
    }
    const std::string command = argv[1];
    if (command == "list") {
      const CliArgs args(argc - 1, argv + 1);
      if (const int rc = check_unused(args)) return rc;
      return cmd_list();
    }
    if (command == "run" || command == "resume" || command == "report") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        std::fprintf(stderr, "%s needs a %s argument (see --help)\n",
                     command.c_str(),
                     command == "run" ? "<spec.json>" : "<store-dir>");
        return 2;
      }
      // argv[2] is the positional path; CliArgs treats it as the program
      // name and parses the flags that follow.
      const CliArgs args(argc - 2, argv + 2);
      const std::string path = argv[2];
      if (command == "run") return cmd_run(path, args);
      if (command == "resume") return cmd_resume(path, args);
      return cmd_report(path, args);
    }
    std::fprintf(stderr, "unknown command '%s' (see --help)\n",
                 command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
