// dyndisp_campaign -- declarative scenario sweeps over the whole library.
//
// Turns a JSON campaign spec (axes: algorithms x adversaries x n x k x comm
// x faults x seeds) into a scheduled, persisted, resumable sweep: trials fan
// out over a thread pool, every result is appended to a JSONL store as it
// finishes, and an interrupted campaign picks up where it left off.
//
//   dyndisp_campaign run campaigns/table1.json --threads 8
//   dyndisp_campaign run campaigns/table1.json --seeds 2     # smoke mode
//   dyndisp_campaign run campaigns/table1.json --workers 4   # process fleet
//   dyndisp_campaign resume campaign_out/table1
//   dyndisp_campaign report campaign_out/table1 --csv table1.csv
//   dyndisp_campaign serve spool --workers 4                 # queue mode
//   dyndisp_campaign status spool
//   dyndisp_campaign list
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/scheduler.h"
#include "campaign/service/coordinator.h"
#include "campaign/service/queue.h"
#include "campaign/service/worker.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "util/cli.h"
#include "util/json.h"

namespace {

using namespace dyndisp;
using namespace dyndisp::campaign;

constexpr const char* kUsage = R"(dyndisp_campaign -- scenario sweeps as data

commands:
  run <spec.json>      expand the spec's axes and run every trial
      --out DIR        result-store directory (default campaign_out/<name>)
      --threads N      in-process worker lanes (default: hardware
                       concurrency; the resolved value lands in the
                       manifest's run counters)
      --workers N      run through the service coordinator instead: N
                       worker PROCESSES with per-shard stores, crash
                       recovery, and a deterministic job-order merge
                       (see docs/CAMPAIGN.md); --workers 0 = auto
      --seeds S        override the spec's seeds-per-tuple (smoke mode)
      --quiet          suppress per-trial progress lines
      --no-timing      zero the per-record wall_ms field so the same
                       spec+seed yields byte-identical results.jsonl
                       (determinism regression; see scripts/check_determinism.sh)
      --kill-after N   test hook (with --workers): worker 0's first
                       incarnation SIGKILLs itself after N records
  resume <store-dir>   finish an interrupted campaign; completed trials
                       (records already in results.jsonl or leftover
                       shard stores) are skipped
      --threads N, --workers N, --quiet, --no-timing   as for run
  report <store-dir>   aggregate the JSONL records into the tuple table
      --csv FILE       also export the aggregate as CSV
  serve <spool-dir>    queue mode: watch <spool>/incoming/ for specs,
                       admit under a job budget, run each through the
                       coordinator, report progress in <spool>/status.json
      --out DIR        result stores (default <spool>/out)
      --workers N      coordinator fleet per spec (0 = auto)
      --max-queued-jobs J   admission budget (backpressure)
      --poll-ms M      idle rescan interval (default 500)
      --once           drain what is there and exit (CI / cron mode)
      --quiet, --no-timing   as for run
  status <spool-dir>   print a spool snapshot (status.json + counts)
  worker               internal: service worker (spawned by the
                       coordinator; reads job indices from stdin)
      --spec F --store DIR [--seeds S] [--no-timing]
      [--die-after N] [--die-on N]   crash-injection test hooks
  list                 enumerate registered algorithms, adversaries,
                       families, and placements
  --help               this text

The store directory holds spec.json (the spec copy resume reads),
results.jsonl (one record per finished trial; with --workers, the
job-ordered merge of the per-shard stores -- bitwise identical to a
--threads 1 run), and manifest.json (campaign identity plus per-invocation
executed/skipped/failed/wall-time/threads/workers counters).
)";

int check_unused(const CliArgs& args) {
  if (const auto unknown = args.unused(); !unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n",
                 unknown.front().c_str());
    return 2;
  }
  return 0;
}

/// Flags shared by run and resume.
struct RunFlags {
  std::size_t threads = 0;     ///< 0 = auto (resolved by the scheduler).
  bool use_workers = false;    ///< --workers given: coordinator path.
  std::size_t workers = 0;     ///< 0 = auto.
  std::size_t kill_after = 0;  ///< Crash-injection test hook.
  std::size_t seeds = 0;       ///< 0 = spec's own.
  bool quiet = false;
  bool record_timing = true;
};

RunFlags parse_run_flags(const CliArgs& args) {
  RunFlags f;
  f.threads = static_cast<std::size_t>(args.get_uint("threads", 0));
  f.use_workers = args.has("workers");
  f.workers = static_cast<std::size_t>(args.get_uint("workers", 0));
  f.kill_after = static_cast<std::size_t>(args.get_uint("kill-after", 0));
  if (args.has("seeds"))
    f.seeds = static_cast<std::size_t>(args.get_uint("seeds", 1));
  f.quiet = args.has("quiet");
  f.record_timing = !args.has("no-timing");
  return f;
}

/// Shared by run and resume once the spec and store are in hand. `spec`
/// already carries any seeds override; `flags.seeds` repeats it so the
/// coordinator can forward it to worker processes.
int execute(const CampaignSpec& spec, ResultStore& store,
            const RunFlags& flags) {
  if (flags.use_workers) {
    service::CoordinatorOptions copts;
    copts.workers = flags.workers;
    copts.seeds = flags.seeds;
    copts.record_timing = flags.record_timing;
    copts.kill_after = flags.kill_after;
    copts.progress = flags.quiet ? nullptr : &std::cout;
    const service::ServiceOutcome outcome =
        service::run_coordinator(spec, store, copts);
    std::printf(
        "campaign %s: %zu jobs, %zu executed, %zu skipped, %zu failed, "
        "%zu poisoned (%.1f ms, %zu workers, %zu crashes tolerated)\n",
        spec.name().c_str(), outcome.campaign.total,
        outcome.campaign.executed, outcome.campaign.skipped,
        outcome.campaign.failed, outcome.poisoned_jobs.size(),
        outcome.campaign.wall_ms, outcome.workers, outcome.worker_crashes);
    for (const std::string& id : outcome.poisoned_jobs)
      std::printf("poisoned (crashed a worker on every attempt): %s\n",
                  id.c_str());
    const auto groups = aggregate(store.load());
    std::fputs(render_report(spec.name(), groups).c_str(), stdout);
    std::printf("store: %s\n", store.dir().c_str());
    return outcome.ok() ? 0 : 1;
  }
  if (flags.kill_after != 0) {
    std::fprintf(stderr, "--kill-after needs --workers (see --help)\n");
    return 2;
  }
  const CampaignOutcome outcome =
      run_campaign(spec, store, flags.threads,
                   flags.quiet ? nullptr : &std::cout, flags.record_timing);
  std::printf(
      "campaign %s: %zu jobs, %zu executed, %zu skipped, %zu failed "
      "(%.1f ms, %zu threads)\n",
      spec.name().c_str(), outcome.total, outcome.executed, outcome.skipped,
      outcome.failed, outcome.wall_ms, outcome.threads);
  const auto groups = aggregate(store.load());
  std::fputs(render_report(spec.name(), groups).c_str(), stdout);
  std::printf("store: %s\n", store.dir().c_str());
  return outcome.failed == 0 ? 0 : 1;
}

int cmd_run(const std::string& spec_path, const CliArgs& args) {
  CampaignSpec spec = CampaignSpec::parse_file(spec_path);
  const RunFlags flags = parse_run_flags(args);
  if (flags.seeds != 0) spec.set_seeds(flags.seeds);
  const std::string out_dir =
      args.get("out", "campaign_out/" + spec.name());
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(out_dir);
  return execute(spec, store, flags);
}

int cmd_resume(const std::string& store_dir, const CliArgs& args) {
  RunFlags flags = parse_run_flags(args);
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(store_dir);
  CampaignSpec spec = CampaignSpec::parse_file(store.spec_path());
  if (flags.seeds == 0) {
    // The manifest remembers any --seeds override the original run applied,
    // so resume completes the campaign that was actually started.
    std::ifstream in(store.manifest_path());
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        const JsonValue manifest = JsonValue::parse(buffer.str());
        if (const JsonValue* seeds = manifest.find("seeds"))
          flags.seeds = static_cast<std::size_t>(seeds->as_uint());
      } catch (const std::invalid_argument&) {
        // Torn manifest (killed mid-write): fall back to the spec's seeds.
      }
    }
  }
  if (flags.seeds != 0) spec.set_seeds(flags.seeds);
  return execute(spec, store, flags);
}

int cmd_worker(const CliArgs& args) {
  service::WorkerOptions opts;
  opts.spec_path = args.get("spec", "");
  opts.store_dir = args.get("store", "");
  opts.seeds = static_cast<std::size_t>(args.get_uint("seeds", 0));
  opts.record_timing = !args.has("no-timing");
  opts.die_after = static_cast<std::size_t>(args.get_uint("die-after", 0));
  if (args.has("die-on"))
    opts.die_on_index = static_cast<std::size_t>(args.get_uint("die-on", 0));
  if (const int rc = check_unused(args)) return rc;
  if (opts.spec_path.empty() || opts.store_dir.empty()) {
    std::fprintf(stderr, "worker needs --spec and --store (see --help)\n");
    return 2;
  }
  return service::run_worker(opts, std::cin, std::cout);
}

int cmd_serve(const std::string& spool_dir, const CliArgs& args) {
  service::ServeOptions opts;
  opts.spool_dir = spool_dir;
  opts.out_dir = args.get("out", "");
  opts.workers = static_cast<std::size_t>(args.get_uint("workers", 0));
  opts.max_queued_jobs =
      static_cast<std::size_t>(args.get_uint("max-queued-jobs", 1000000));
  opts.poll_ms = static_cast<std::size_t>(args.get_uint("poll-ms", 500));
  opts.once = args.has("once");
  opts.record_timing = !args.has("no-timing");
  const bool quiet = args.has("quiet");
  if (!quiet) opts.log = &std::cout;
  if (const int rc = check_unused(args)) return rc;

  const service::ServeReport report = service::run_serve(opts);
  std::printf(
      "serve %s: %zu completed, %zu failed, %zu rejected, %zu deferrals\n",
      spool_dir.c_str(), report.specs_completed, report.specs_failed,
      report.specs_rejected, report.deferrals);
  return report.specs_failed == 0 && report.specs_rejected == 0 ? 0 : 1;
}

int cmd_status(const std::string& spool_dir, const CliArgs& args) {
  if (const int rc = check_unused(args)) return rc;
  std::fputs(service::render_spool_status(spool_dir).c_str(), stdout);
  return 0;
}

int cmd_report(const std::string& store_dir, const CliArgs& args) {
  const std::string csv_path = args.get("csv", "");
  if (const int rc = check_unused(args)) return rc;

  ResultStore store(store_dir);
  const std::vector<TrialRecord> records = store.load();
  if (records.empty()) {
    std::fprintf(stderr, "no records in %s\n", store.results_path().c_str());
    return 1;
  }
  std::string name = store_dir;
  try {
    name = CampaignSpec::parse_file(store.spec_path()).name();
  } catch (const std::exception&) {
    // Report works on a bare results.jsonl too.
  }
  const auto groups = aggregate(records);
  std::fputs(render_report(name, groups).c_str(), stdout);
  std::size_t failed = 0;
  for (const auto& g : groups) failed += g.failed;
  const auto runs = store.run_history();
  std::printf("records: %zu   failed: %zu   scheduler invocations: %zu\n",
              records.size(), failed, runs.size());
  if (!csv_path.empty()) {
    write_report_csv(csv_path, groups);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  return 0;
}

int cmd_list() {
  const Registry& registry = Registry::instance();
  const auto print = [](const char* category,
                        const std::vector<std::string>& names) {
    std::printf("%s:\n", category);
    for (const std::string& name : names)
      std::printf("  %s\n", name.c_str());
  };
  print("algorithms", registry.algorithm_names());
  print("adversaries", registry.adversary_names());
  print("families", registry.family_names());
  print("placements", registry.placement_names());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2 || std::string(argv[1]) == "--help" ||
        std::string(argv[1]) == "help") {
      std::fputs(kUsage, stdout);
      return argc < 2 ? 2 : 0;
    }
    const std::string command = argv[1];
    if (command == "list") {
      const CliArgs args(argc - 1, argv + 1);
      if (const int rc = check_unused(args)) return rc;
      return cmd_list();
    }
    if (command == "worker") {
      const CliArgs args(argc - 1, argv + 1);
      return cmd_worker(args);
    }
    if (command == "run" || command == "resume" || command == "report" ||
        command == "serve" || command == "status") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        std::fprintf(stderr, "%s needs a %s argument (see --help)\n",
                     command.c_str(),
                     command == "run"
                         ? "<spec.json>"
                         : (command == "serve" || command == "status")
                               ? "<spool-dir>"
                               : "<store-dir>");
        return 2;
      }
      // argv[2] is the positional path; CliArgs treats it as the program
      // name and parses the flags that follow.
      const CliArgs args(argc - 2, argv + 2);
      const std::string path = argv[2];
      if (command == "run") return cmd_run(path, args);
      if (command == "resume") return cmd_resume(path, args);
      if (command == "serve") return cmd_serve(path, args);
      if (command == "status") return cmd_status(path, args);
      return cmd_report(path, args);
    }
    std::fprintf(stderr, "unknown command '%s' (see --help)\n",
                 command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
