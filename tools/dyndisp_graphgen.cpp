// dyndisp_graphgen -- emit library graph families as edge lists or DOT.
//
// Examples:
//   dyndisp_graphgen --family grid --n 12
//   dyndisp_graphgen --family random --n 20 --extra 8 --seed 3 --format dot
#include <cstdio>
#include <stdexcept>
#include <string>

#include "graph/builders.h"
#include "graph/io.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

using namespace dyndisp;

constexpr const char* kUsage = R"(dyndisp_graphgen -- graph family generator

flags:
  --family F     path cycle star complete bipartite grid torus hypercube
                 btree lollipop tree random            (default random)
  --n N          nodes (default 12)
  --extra E      extra edges for random family (default n/2)
  --seed S       seed for randomized families (default 1)
  --format FMT   edges | dot (default edges)
  --shuffle      randomly permute port labels
  --help         this text
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const std::string family = args.get("family", "random");
    const std::size_t n = args.get_uint("n", 12);
    const std::uint64_t seed = args.get_uint("seed", 1);
    const std::size_t extra = args.get_uint("extra", n / 2);
    const std::string format = args.get("format", "edges");
    const bool shuffle = args.get_bool("shuffle", false);
    if (const auto unknown = args.unused(); !unknown.empty()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", unknown.front().c_str(),
                   kUsage);
      return 2;
    }

    Rng rng(seed);
    Graph g;
    if (family == "path") g = builders::path(n);
    else if (family == "cycle") g = builders::cycle(n);
    else if (family == "star") g = builders::star(n);
    else if (family == "complete") g = builders::complete(n);
    else if (family == "bipartite") g = builders::complete_bipartite(n / 2, n - n / 2);
    else if (family == "grid") g = builders::grid((n + 3) / 4, 4);
    else if (family == "torus") g = builders::torus(3, (n + 2) / 3);
    else if (family == "hypercube") {
      std::size_t d = 1;
      while ((std::size_t{1} << (d + 1)) <= n) ++d;
      g = builders::hypercube(d);
    } else if (family == "btree") g = builders::binary_tree(n);
    else if (family == "lollipop") g = builders::lollipop(n / 2, n - n / 2);
    else if (family == "tree") g = builders::random_tree(n, rng);
    else if (family == "random") g = builders::random_connected(n, extra, rng);
    else throw std::invalid_argument("unknown --family " + family);

    if (shuffle) g.shuffle_ports(rng);

    if (format == "edges") {
      std::fputs(to_edge_list(g).c_str(), stdout);
    } else if (format == "dot") {
      std::fputs(to_dot(g).c_str(), stdout);
    } else {
      throw std::invalid_argument("unknown --format " + format);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
