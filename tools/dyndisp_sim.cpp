// dyndisp_sim -- command-line driver for the dispersion simulator.
//
// Runs any (algorithm x adversary x placement x fault/activation model)
// combination from the library over one or many seeds and reports rounds,
// moves, metered memory, and progress; optionally dumps a full JSON trace
// or a per-seed CSV. All names resolve through the shared campaign
// registry, so a tuple run here is bit-identical to the same tuple inside a
// dyndisp_campaign sweep.
//
// Examples:
//   dyndisp_sim --n 20 --k 14                          # Alg4, random dynamic
//   dyndisp_sim --adversary star-star --k 32 --trials 5
//   dyndisp_sim --algorithm dfs --adversary static --family grid --comm local
//   dyndisp_sim --faults 4 --trials 10 --csv out.csv
//   dyndisp_sim --adversary ring-worst --trace-json trace.json
//   dyndisp_sim --list                                 # registered names
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "campaign/registry.h"
#include "robots/configuration.h"
#include "sim/byzantine.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "viz/svg.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr const char* kUsage = R"(dyndisp_sim -- dispersion on dynamic graphs

flags (all optional):
  --n N                nodes (default 20)
  --k K                robots (default 2n/3)
  --trials T           seeds to sweep (default 1)
  --seed S             base seed (default 1)
  --max-rounds R       round budget (default 100k)
  --algorithm A        alg4 | alg4-bfs | alg4-1path | dfs | greedy |
                       random-walk | blind-walk           (default alg4)
  --adversary ADV      random | tree | churn | star-star | ring |
                       ring-worst | t-interval | static | static-shuffle |
                       path-trap | clique-trap            (default random)
  --family F           static family: path cycle star complete grid torus
                       hypercube btree lollipop random    (default random)
  --placement P        rooted | random | grouped | figure1 (default rooted)
  --groups G           groups for grouped placement (default 3)
  --comm C             global | local (default: what the algorithm needs)
  --knowledge B        1-neighborhood knowledge on/off (default: as needed)
  --activation P       semi-synchronous activation probability (default 1.0)
  --scheduler S        sync | round-robin (default sync; round-robin
                       activates one robot per round)
  --threads T          compute-phase worker threads (default 1; results
                       are identical at any thread count)
  --no-structure-cache disable the delta-aware round loop / structure cache
                       (results are identical either way; this exposes the
                       rebuild-everything engine for benchmarking)
  --no-soa             disable the struct-of-arrays round core (persistent
                       view arena, gated state lists, before-copy elision;
                       results are identical either way; this exposes the
                       legacy per-round-allocation path for differential
                       proofs and benchmarking)
  --no-flat-packets    disable the flat PacketArena broadcast backend
                       (results are identical either way; this exposes the
                       legacy per-round std::vector<InfoPacket> broadcast
                       path for differential proofs and benchmarking)
  --no-incremental     disable graph-change-gated plan routing: every round
                       is re-planned statelessly as full churn (results are
                       identical either way; this exposes the full-re-plan
                       engine for differential proofs and benchmarking)
  --faults F           robots to crash at random rounds (default 0)
  --liars L            Byzantine liars (robots 1..L) (default 0)
  --lie KIND           hide-multiplicity | hide-empty | erratic
                       (default hide-multiplicity)
  --trace-json FILE    dump the first trial's full trace as JSON
  --svg FILE           render the first trial as an animated SVG
  --csv FILE           per-trial results CSV
  --list               enumerate every name the registry knows and exit
  --help               this text
)";

void print_registry() {
  const campaign::Registry& registry = campaign::Registry::instance();
  const auto print = [](const char* category,
                        const std::vector<std::string>& names) {
    std::printf("%s:", category);
    for (const std::string& name : names) std::printf(" %s", name.c_str());
    std::printf("\n");
  };
  print("algorithms", registry.algorithm_names());
  print("adversaries", registry.adversary_names());
  print("families", registry.family_names());
  print("placements", registry.placement_names());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    if (args.has("help")) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (args.has("list")) {
      print_registry();
      return 0;
    }

    const std::size_t n = args.get_uint("n", 20);
    const std::size_t k = args.get_uint("k", std::max<std::size_t>(2, 2 * n / 3));
    const std::size_t trials = args.get_uint("trials", 1);
    const std::uint64_t base_seed = args.get_uint("seed", 1);
    const std::string algorithm = args.get("algorithm", "alg4");
    const std::string adversary = args.get("adversary", "random");
    const std::string family = args.get("family", "random");
    const std::string placement_name = args.get("placement", "rooted");
    const std::size_t groups = args.get_uint("groups", 3);
    const double activation = args.get_double("activation", 1.0);
    const std::size_t faults = args.get_uint("faults", 0);
    const std::size_t liars = args.get_uint("liars", 0);
    const std::string lie_kind = args.get("lie", "hide-multiplicity");
    const std::string trace_path = args.get("trace-json", "");
    const std::string svg_path = args.get("svg", "");
    const std::string csv_path = args.get("csv", "");

    const campaign::Registry& registry = campaign::Registry::instance();
    const campaign::AlgorithmChoice algo =
        registry.algorithm(algorithm, base_seed);

    EngineOptions options;
    options.max_rounds = args.get_uint("max-rounds", 100 * k);
    options.threads = args.get_uint("threads", 1);
    const std::string comm =
        args.get("comm", algo.needs_global ? "global" : "local");
    options.comm = comm == "global" ? CommModel::kGlobal : CommModel::kLocal;
    options.neighborhood_knowledge =
        args.get_bool("knowledge", algo.needs_knowledge);
    options.allow_model_mismatch = true;
    options.record_progress = true;
    if (args.has("no-structure-cache")) options.structure_cache = false;
    if (args.has("no-soa")) options.soa = false;
    if (args.has("no-flat-packets")) options.flat_packets = false;
    if (args.has("no-incremental")) options.incremental_planning = false;
    if (activation < 1.0) {
      options.activation = Activation::kRandomSubset;
      options.activation_probability = activation;
      options.activation_seed = base_seed;
    }
    if (liars > 0) {
      ByzantineLie lie = ByzantineLie::kHideMultiplicity;
      if (lie_kind == "hide-empty") lie = ByzantineLie::kHideEmptyNeighbors;
      else if (lie_kind == "erratic") lie = ByzantineLie::kErraticMoves;
      else if (lie_kind != "hide-multiplicity")
        throw std::invalid_argument("unknown --lie " + lie_kind);
      std::set<RobotId> ids;
      for (std::size_t i = 0; i < liars; ++i)
        ids.insert(static_cast<RobotId>(i + 1));
      options.byzantine = std::make_shared<ByzantineModel>(std::move(ids), lie);
    }
    const std::string scheduler = args.get("scheduler", "sync");
    if (scheduler == "round-robin") {
      options.activation = Activation::kRoundRobin;
    } else if (scheduler != "sync") {
      throw std::invalid_argument("unknown --scheduler " + scheduler);
    }

    if (const auto unknown = args.unused(); !unknown.empty()) {
      std::fprintf(stderr, "unknown flag --%s (see --help)\n",
                   unknown.front().c_str());
      return 2;
    }

    std::unique_ptr<CsvWriter> csv;
    if (!csv_path.empty()) {
      csv = std::make_unique<CsvWriter>(
          csv_path, std::vector<std::string>{"seed", "dispersed", "rounds",
                                             "moves", "memory_bits",
                                             "max_occupied", "crashed"});
    }

    Summary rounds, moves, memory;
    std::size_t dispersed = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const std::uint64_t seed = base_seed + t;
      auto adv = registry.adversary(adversary, family, n, seed);
      Configuration initial =
          registry.placement(placement_name, n, k, groups, seed);
      FaultSchedule schedule = FaultSchedule::none();
      if (faults > 0) {
        Rng rng(seed * 17 + 5);
        schedule = FaultSchedule::random(k, faults, k, rng);
      }
      EngineOptions trial_options = options;
      trial_options.record_trace =
          t == 0 && (!trace_path.empty() || !svg_path.empty());
      Engine engine(*adv, std::move(initial), algo.factory, trial_options,
                    std::move(schedule));
      const RunResult r = engine.run();
      if (r.dispersed) ++dispersed;
      rounds.add(static_cast<double>(r.rounds));
      moves.add(static_cast<double>(r.total_moves));
      memory.add(static_cast<double>(r.max_memory_bits));
      if (csv) {
        csv->add_row({std::to_string(seed), r.dispersed ? "1" : "0",
                      std::to_string(r.rounds), std::to_string(r.total_moves),
                      std::to_string(r.max_memory_bits),
                      std::to_string(r.max_occupied),
                      std::to_string(r.crashed)});
      }
      if (trial_options.record_trace && !trace_path.empty()) {
        std::ofstream out(trace_path);
        out << trace_to_json(r.trace);
        std::printf("trace written to %s (%zu rounds)\n", trace_path.c_str(),
                    r.trace.size());
      }
      if (trial_options.record_trace && !svg_path.empty()) {
        std::ofstream out(svg_path);
        out << viz::render_animation(r.trace);
        std::printf("animation written to %s (%zu rounds)\n",
                    svg_path.c_str(), r.trace.size());
      }
    }

    AsciiTable table({"metric", "value"});
    table.set_title("dyndisp_sim: " + algorithm + " vs " + adversary +
                    " (n=" + std::to_string(n) + ", k=" + std::to_string(k) +
                    ", trials=" + std::to_string(trials) + ")");
    table.add_row({"dispersed", std::to_string(dispersed) + "/" +
                                    std::to_string(trials)});
    table.add_row({"rounds mean/max", fmt_double(rounds.mean(), 1) + " / " +
                                          fmt_double(rounds.max(), 0)});
    table.add_row({"moves mean", fmt_double(moves.mean(), 1)});
    table.add_row({"memory bits max", fmt_double(memory.max(), 0)});
    std::fputs(table.render().c_str(), stdout);
    return dispersed == trials ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 2;
  }
}
