// dyndisp_lint -- the project-specific static-analysis pass.
//
// Scans C++ sources with a lightweight tokenizer and runs the registered
// determinism/metering/hygiene rules (dyndisp_lint --list). The repo's
// runtime oracles (src/check/) catch determinism violations by sampling
// executions; this tool rejects the hazard classes at lint time, before
// they can reach an execution.
//
//   dyndisp_lint --all src tests tools         # the CI tree gate
//   dyndisp_lint --rule determinism-random src
//   dyndisp_lint --self-check                  # planted-violation proof
//   dyndisp_lint --list
//
// exit codes: 0 clean; 1 findings; 2 usage/IO error.
#include <cstdio>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.h"
#include "lint/registry.h"
#include "lint/selfcheck.h"

namespace {

using namespace dyndisp::lint;

constexpr const char* kUsage = R"(dyndisp_lint -- determinism/metering/hygiene static analysis

usage: dyndisp_lint [options] [paths...]
  paths                files or directories (default: src tests tools);
                       directories are walked recursively for
                       .h/.hpp/.cpp/.cc in sorted order
  --all                run every registered rule (the default)
  --rule NAME          run only NAME (repeatable)
  --list               list the registered rules and exit
  --self-check         run the embedded planted-violation self-test: every
                       rule must catch its planted bug, stay silent on the
                       clean twin, and honor the suppression contract
  --quiet              print only the summary line
  --help               this text

suppressions:
  code;  // NOLINT-dyndisp(rule-name): justification
  // NOLINTNEXTLINE-dyndisp(rule-name): justification
The justification is mandatory; a bare NOLINT-dyndisp suppresses nothing
and is itself a finding (suppression-contract).

exit codes: 0 clean; 1 findings; 2 usage/IO error.
)";

int run(int argc, char** argv) {
  LintOptions options;
  bool quiet = false;
  bool self_check = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--list") {
      for (const std::string& name : LintRegistry::instance().names())
        std::printf("%-28s %s\n", name.c_str(),
                    LintRegistry::instance().description(name).c_str());
      return 0;
    } else if (arg == "--all") {
      options.rules.clear();
    } else if (arg == "--rule") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--rule needs a name (see --list)\n");
        return 2;
      }
      options.rules.push_back(argv[++i]);
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  // Validate rule names up front so a typo fails loudly.
  for (const std::string& name : options.rules)
    (void)LintRegistry::instance().make(name);

  if (self_check) {
    const SelfCheckResult result = run_self_check();
    if (!quiet || !result.ok) std::fputs(result.detail.c_str(), stdout);
    std::printf("dyndisp_lint --self-check: %s\n",
                result.ok ? "all rules proven" : "FAILED");
    return result.ok ? 0 : 1;
  }

  if (options.paths.empty()) options.paths = {"src", "tests", "tools"};

  const LintReport report = lint_paths(options);
  if (quiet) {
    std::printf("dyndisp_lint: %zu file(s), %zu finding(s), %zu suppressed\n",
                report.files_scanned, report.diagnostics.size(),
                report.suppressed);
  } else {
    print_report(report, std::cout);
  }
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dyndisp_lint: %s\n", e.what());
    return 2;
  }
}
