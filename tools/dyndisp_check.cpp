// dyndisp_check -- the property-based correctness harness as a CLI.
//
// fuzz:   generate random trials over everything the campaign registry
//         offers, run each with the paper's invariant oracles installed
//         (plus the differential oracles), shrink every failure, and dump
//         self-contained repro artifacts.
// replay: re-run a repro artifact deterministically and confirm it still
//         violates the oracle it was recorded against.
// shrink: minimize a failing artifact further (or shrink a hand-written
//         failing config for the first time).
//
//   dyndisp_check fuzz --trials 200 --artifacts repros/
//   dyndisp_check fuzz --plant disconnect --expect-violation
//   dyndisp_check replay repros/repro-1-round-graph.json
//   dyndisp_check shrink repros/repro-1-round-graph.json --out min.json
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "check/fuzzer.h"
#include "check/planted.h"
#include "check/repro.h"
#include "check/shrinker.h"
#include "check/trial.h"
#include "util/cli.h"

namespace {

using namespace dyndisp;
using namespace dyndisp::check;

constexpr const char* kUsage = R"(dyndisp_check -- property-based trial fuzzer

commands:
  fuzz                 random trials x invariant + differential oracles
      --trials N       trial budget (default 100)
      --budget-s S     wall-clock budget in seconds, 0 = none (default 0)
      --seed S         base seed for the trial stream (default 1)
      --max-n N        largest requested node count (default 24)
      --fault-prob P   fraction of trials with crash faults (default 0.3)
      --diff-threads N parallel leg of the threads differential (default 4)
      --no-differential  skip the differential oracles
      --artifacts DIR  write one repro artifact per failure into DIR
      --max-failures N stop after N failures (default 5)
      --plant NAME     fuzz a deliberately broken component instead of the
                       registry: disconnect | lazy
      --expect-violation  invert the exit code (planted-bug self-tests)
      --quiet          suppress per-event log lines
  replay <artifact>    re-run a repro artifact
      --plant NAME     resolve planted component names (as above)
      exit 0: same oracle violated again; 3: it did not reproduce
  shrink <artifact>    minimize a failing artifact further
      --out FILE       where to write the minimized artifact
                       (default: <artifact>.min.json)
      --max-attempts N shrink budget in candidate re-runs (default 400)
      --plant NAME     resolve planted component names (as above)
      exit 0: minimized artifact written; 3: input did not reproduce
  --help               this text

exit codes: 0 success; 2 usage/config error; 3 replay/shrink could not
reproduce; 4 fuzz found violations (0 with --expect-violation).
)";

int check_unused(const CliArgs& args) {
  if (const auto unknown = args.unused(); !unknown.empty()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n",
                 unknown.front().c_str());
    return 2;
  }
  return 0;
}

Toolbox make_toolbox(const CliArgs& args) {
  const std::string plant = args.get("plant", "");
  if (plant.empty()) return Toolbox{};
  return planted_toolbox(plant);
}

int cmd_fuzz(const CliArgs& args) {
  FuzzOptions options;
  options.trials = static_cast<std::size_t>(args.get_uint("trials", 100));
  options.budget_s = args.get_double("budget-s", 0.0);
  options.base_seed = args.get_uint("seed", 1);
  options.max_n = static_cast<std::size_t>(args.get_uint("max-n", 24));
  options.fault_probability = args.get_double("fault-prob", 0.3);
  options.diff_threads =
      static_cast<std::size_t>(args.get_uint("diff-threads", 4));
  options.differential = !args.has("no-differential");
  options.artifact_dir = args.get("artifacts", "");
  options.max_failures =
      static_cast<std::size_t>(args.get_uint("max-failures", 5));
  const bool expect_violation = args.has("expect-violation");
  const bool quiet = args.has("quiet");
  options.log = quiet ? nullptr : &std::cout;
  const Toolbox toolbox = make_toolbox(args);
  if (const int rc = check_unused(args)) return rc;
  if (!options.artifact_dir.empty())
    std::filesystem::create_directories(options.artifact_dir);

  const FuzzReport report = fuzz(options, toolbox);
  std::printf(
      "fuzz: %zu trials, %zu differential, %zu violation(s)%s\n",
      report.trials_run, report.differential_trials, report.failures.size(),
      report.budget_exhausted ? " (budget exhausted)" : "");
  for (const FuzzFailure& f : report.failures) {
    std::printf("  [%s] %s\n", f.violation.oracle.c_str(),
                f.shrunk.summary().c_str());
    if (!f.artifact_path.empty())
      std::printf("    artifact: %s\n", f.artifact_path.c_str());
    std::printf("    replay:   dyndisp_check replay %s\n",
                f.artifact_path.empty() ? "<artifact>"
                                        : f.artifact_path.c_str());
  }
  const bool clean = report.clean();
  if (expect_violation) return clean ? 4 : 0;
  return clean ? 0 : 4;
}

int cmd_replay(const std::string& path, const CliArgs& args) {
  const bool quiet = args.has("quiet");
  const Toolbox toolbox = make_toolbox(args);
  if (const int rc = check_unused(args)) return rc;

  const ReproArtifact artifact = load_artifact(path);
  if (!quiet) {
    std::printf("replay: %s\n", artifact.config.summary().c_str());
    std::printf("expect: [%s] at round %llu\n",
                artifact.expected.oracle.c_str(),
                static_cast<unsigned long long>(artifact.expected.round));
  }
  const ReplayOutcome outcome = replay(artifact, toolbox);
  if (outcome.violation) {
    std::printf("got:    [%s] at round %llu\n",
                outcome.violation->oracle.c_str(),
                static_cast<unsigned long long>(outcome.violation->round));
    if (!quiet) std::printf("        %s\n", outcome.violation->message.c_str());
  } else {
    std::printf("got:    no violation\n");
  }
  if (!outcome.reproduced) {
    std::fprintf(stderr, "replay: artifact did NOT reproduce\n");
    return 3;
  }
  std::printf("replay: reproduced\n");
  return 0;
}

int cmd_shrink(const std::string& path, const CliArgs& args) {
  const std::string out_path = args.get("out", path + ".min.json");
  ShrinkOptions shrink_options;
  shrink_options.max_attempts =
      static_cast<std::size_t>(args.get_uint("max-attempts", 400));
  const Toolbox toolbox = make_toolbox(args);
  if (const int rc = check_unused(args)) return rc;

  ReproArtifact artifact = load_artifact(path);
  const CheckedOutcome out = run_checked(artifact.config, toolbox);
  if (!out.violation || out.violation->oracle != artifact.expected.oracle) {
    std::fprintf(stderr, "shrink: artifact did not reproduce [%s]\n",
                 artifact.expected.oracle.c_str());
    return 3;
  }
  const ShrinkResult result =
      shrink(artifact.config, *out.violation, toolbox, shrink_options);
  std::printf("shrink: %s\n   ->   %s\n(%zu candidate runs)\n",
              artifact.config.summary().c_str(),
              result.config.summary().c_str(), result.attempts);
  ReproArtifact minimized;
  minimized.config = result.config;
  minimized.expected = result.violation;
  minimized.note = "shrunk from " + artifact.config.summary();
  write_artifact(minimized, out_path);
  std::printf("shrink: minimized artifact written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2 || std::string(argv[1]) == "--help" ||
        std::string(argv[1]) == "help") {
      std::fputs(kUsage, stdout);
      return argc < 2 ? 2 : 0;
    }
    const std::string command = argv[1];
    if (command == "fuzz") {
      const CliArgs args(argc - 1, argv + 1);
      return cmd_fuzz(args);
    }
    if (command == "replay" || command == "shrink") {
      if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
        std::fprintf(stderr, "%s needs an <artifact> argument (see --help)\n",
                     command.c_str());
        return 2;
      }
      const CliArgs args(argc - 2, argv + 2);
      const std::string path = argv[2];
      return command == "replay" ? cmd_replay(path, args)
                                 : cmd_shrink(path, args);
    }
    std::fprintf(stderr, "unknown command '%s' (see --help)\n",
                 command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
